// Observability layer: registry semantics, log-histogram bucketing,
// scoped-timer accumulation, JSON round-trips, heartbeat cadence, and the
// key invariant that instrumentation never changes the model's output.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <vector>

#include "core/profiler.h"
#include "obs/heartbeat.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "trace/trace_reader.h"
#include "trace/zipf.h"
#include "util/stopwatch.h"

namespace krr {
namespace {

using obs::Json;
using obs::LogHistogram;

TEST(Counter, IncrementsAndResets) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, LastWriteWins) {
  obs::Gauge g;
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(LogHistogramTest, BucketIndexBoundaries) {
  EXPECT_EQ(LogHistogram::bucket_index(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_index(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_index(2), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(3), 2u);
  EXPECT_EQ(LogHistogram::bucket_index(4), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(7), 3u);
  EXPECT_EQ(LogHistogram::bucket_index(8), 4u);
  EXPECT_EQ(LogHistogram::bucket_index(std::numeric_limits<std::uint64_t>::max()),
            64u);
  // Every value lands in the bucket whose [lo, hi] range contains it.
  for (std::uint64_t v : {0ull, 1ull, 5ull, 1000ull, 123456789ull}) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_GE(v, LogHistogram::bucket_lo(i));
    EXPECT_LE(v, LogHistogram::bucket_hi(i));
  }
}

TEST(LogHistogramTest, ExtremeValueBucketEdges) {
  // 0, 1, and UINT64_MAX are the degenerate corners of the log bucketing:
  // each must land in a bucket whose [lo, hi] range contains it, and
  // recording them must not disturb count/sum accounting.
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  for (std::uint64_t v : {std::uint64_t{0}, std::uint64_t{1}, kMax}) {
    const std::size_t i = LogHistogram::bucket_index(v);
    EXPECT_GE(v, LogHistogram::bucket_lo(i)) << v;
    EXPECT_LE(v, LogHistogram::bucket_hi(i)) << v;
  }
  // The 0 and 1 buckets are exact singletons.
  EXPECT_EQ(LogHistogram::bucket_lo(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_hi(0), 0u);
  EXPECT_EQ(LogHistogram::bucket_lo(1), 1u);
  EXPECT_EQ(LogHistogram::bucket_hi(1), 1u);
  // The top bucket's hi edge is saturated, not overflowed to 0.
  EXPECT_EQ(LogHistogram::bucket_hi(LogHistogram::bucket_index(kMax)), kMax);

  LogHistogram h;
  h.record(0);
  h.record(1);
  h.record(kMax);
  EXPECT_EQ(h.count(), 3u);
  // Sum wraps mod 2^64 by design (unsigned); the count is what must hold.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_GE(h.quantile(1.0), 1.0);
}

TEST(LogHistogramTest, CountSumMeanAndQuantiles) {
  LogHistogram h;
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.sum(), 5050u);
  EXPECT_DOUBLE_EQ(h.mean(), 50.5);
  // Quantiles are bucket-resolution approximations: monotone in q and
  // within the recorded range.
  double last = 0.0;
  for (double q : {0.1, 0.5, 0.9, 0.99, 1.0}) {
    const double val = h.quantile(q);
    EXPECT_GE(val, last);
    EXPECT_LE(val, 128.0);  // hi bound of the bucket containing 100
    last = val;
  }
  // The median of 1..100 must sit in the bucket [32, 63].
  EXPECT_GE(h.quantile(0.5), 32.0);
  EXPECT_LE(h.quantile(0.5), 63.0);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
}

TEST(MetricsRegistry, SameNameSameInstance) {
  obs::MetricsRegistry registry;
  obs::Counter& a = registry.counter("x.count");
  obs::Counter& b = registry.counter("x.count");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Namespaces are per metric kind: a gauge may share a counter's name.
  obs::Gauge& g = registry.gauge("x.count");
  g.set(1.5);
  EXPECT_EQ(registry.counter("x.count").value(), 3u);
  EXPECT_NE(static_cast<void*>(&g), static_cast<void*>(&a));
}

TEST(MetricsRegistry, StableAddressesAcrossRegistrations) {
  obs::MetricsRegistry registry;
  obs::Counter& first = registry.counter("first");
  for (int i = 0; i < 100; ++i) {
    registry.counter("c" + std::to_string(i));
  }
  EXPECT_EQ(&first, &registry.counter("first"));
}

TEST(MetricsRegistry, JsonRoundTrip) {
  obs::MetricsRegistry registry;
  registry.counter("profiler.accesses").inc(123456789012345ull);
  registry.gauge("filter.rate").set(0.001);
  LogHistogram& h = registry.histogram("stack.update_ns");
  h.record(0);
  h.record(100);
  h.record(100000);

  std::ostringstream os;
  registry.write_json(os);
  std::string error;
  auto parsed = Json::parse(os.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;

  const Json* counters = parsed->find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("profiler.accesses"), nullptr);
  EXPECT_EQ(counters->find("profiler.accesses")->as_uint(), 123456789012345ull);
  const Json* gauges = parsed->find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("filter.rate")->as_double(), 0.001);
  const Json* histograms = parsed->find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* hist = histograms->find("stack.update_ns");
  ASSERT_NE(hist, nullptr);
  EXPECT_EQ(hist->find("count")->as_uint(), 3u);
  EXPECT_EQ(hist->find("sum")->as_uint(), 100100u);
  // Bucket triples [lo, hi, count] must re-sum to the recorded count.
  const Json* buckets = hist->find("buckets");
  ASSERT_NE(buckets, nullptr);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < buckets->size(); ++i) {
    total += buckets->at(i).at(2).as_uint();
  }
  EXPECT_EQ(total, 3u);
}

TEST(MetricsRegistry, TableOutputMentionsEveryMetric) {
  obs::MetricsRegistry registry;
  registry.counter("a.count").inc();
  registry.gauge("b.value").set(2.0);
  registry.histogram("c.dist").record(7);
  std::ostringstream os;
  registry.write_table(os);
  const std::string text = os.str();
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.value"), std::string::npos);
  EXPECT_NE(text.find("c.dist"), std::string::npos);
}

TEST(JsonTest, ScalarAndStructureRoundTrip) {
  Json root = Json::object();
  root.set("u64_max", Json(std::numeric_limits<std::uint64_t>::max()));
  root.set("negative", Json(std::int64_t{-42}));
  root.set("pi", Json(3.25));
  root.set("flag", Json(true));
  root.set("nothing", Json());
  root.set("text", Json("quote \" backslash \\ newline \n tab \t"));
  Json arr = Json::array();
  arr.push_back(Json(std::uint64_t{1}));
  arr.push_back(Json("two"));
  root.set("arr", std::move(arr));

  std::string error;
  auto parsed = Json::parse(root.dump(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->find("u64_max")->as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parsed->find("negative")->as_int(), -42);
  EXPECT_DOUBLE_EQ(parsed->find("pi")->as_double(), 3.25);
  EXPECT_TRUE(parsed->find("flag")->as_bool());
  EXPECT_TRUE(parsed->find("nothing")->is_null());
  EXPECT_EQ(parsed->find("text")->as_string(),
            "quote \" backslash \\ newline \n tab \t");
  EXPECT_EQ(parsed->find("arr")->size(), 2u);
  EXPECT_EQ(parsed->find("arr")->at(1).as_string(), "two");
}

TEST(JsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "{\"a\":1} extra",
        "\"unterminated", "{\"a\":}", "[1 2]", "nul"}) {
    std::string error;
    EXPECT_FALSE(Json::parse(bad, &error).has_value()) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonTest, DeepNestingIsBoundedNotFatal) {
  std::string bomb(10000, '[');
  EXPECT_FALSE(Json::parse(bomb).has_value());
}

TEST(JsonTest, NestingAcceptedUpToTheDepthGuard) {
  // Just under the parser's recursion guard must round-trip; at or past it
  // must be rejected (not crash). The guard is 64 levels.
  const auto nested = [](int depth) {
    std::string s(static_cast<std::size_t>(depth), '[');
    s += "1";
    s.append(static_cast<std::size_t>(depth), ']');
    return s;
  };
  auto ok = Json::parse(nested(63));
  ASSERT_TRUE(ok.has_value());
  const Json* inner = &*ok;
  for (int i = 0; i < 63; ++i) inner = &inner->at(0);
  EXPECT_EQ(inner->as_uint(), 1u);
  EXPECT_FALSE(Json::parse(nested(65)).has_value());
}

TEST(JsonTest, UnicodeEscapesRoundTrip) {
  // \u escapes decode to UTF-8, including surrogate pairs; the dumper
  // re-escapes control characters so the result re-parses to the same text.
  auto parsed = Json::parse("\"a\\u0041\\u00e9\\u4e2d\\ud83d\\ude00\\u0000z\"");
  ASSERT_TRUE(parsed.has_value());
  const std::string decoded = parsed->as_string();
  EXPECT_EQ(decoded,
            std::string("aA\xc3\xa9\xe4\xb8\xad\xf0\x9f\x98\x80\0z", 13));
  auto reparsed = Json::parse(parsed->dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), decoded);
  // Malformed escapes are rejected, not mangled.
  EXPECT_FALSE(Json::parse("\"\\u12\"").has_value());
  EXPECT_FALSE(Json::parse("\"\\ud83d\"").has_value());  // lone surrogate
}

TEST(JsonTest, IntegerBoundariesKeepTheirLane) {
  // INT64_MIN, -1, and UINT64_MAX each exercise a numeric lane boundary:
  // negatives must parse into the int lane, values past INT64_MAX into the
  // uint lane, and all must survive a dump/parse round trip exactly.
  Json root = Json::object();
  root.set("i64_min", Json(std::numeric_limits<std::int64_t>::min()));
  root.set("i64_max_plus1",
           Json(std::uint64_t{1} << 63));
  root.set("u64_max", Json(std::numeric_limits<std::uint64_t>::max()));
  root.set("minus_one", Json(std::int64_t{-1}));
  auto parsed = Json::parse(root.dump());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->find("i64_min")->as_int(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(parsed->find("i64_max_plus1")->as_uint(), std::uint64_t{1} << 63);
  EXPECT_EQ(parsed->find("u64_max")->as_uint(),
            std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(parsed->find("minus_one")->as_int(), -1);
}

TEST(StopwatchTest, IsSteadyAndMonotonicNanos) {
  static_assert(Stopwatch::is_steady, "obs timing requires a steady clock");
  Stopwatch w;
  const std::uint64_t a = w.nanos();
  // Burn a little time so the reading must advance on any realistic clock.
  volatile double sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + i;
  const std::uint64_t b = w.nanos();
  EXPECT_GE(b, a);
  EXPECT_GT(b, 0u);
}

TEST(ScopedTimerTest, AccumulatesAcrossScopes) {
  double total = 0.0;
  {
    ScopedTimer t(total);
    volatile double sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + i;
  }
  const double first = total;
  EXPECT_GT(first, 0.0);
  {
    ScopedTimer t(total);
    EXPECT_GE(t.elapsed_seconds(), 0.0);
  }
  EXPECT_GE(total, first);
}

TEST(HeartbeatTest, BeatsOnStrideWithZeroInterval) {
  std::ostringstream os;
  obs::Heartbeat hb(0.0, os);
  obs::HeartbeatSnapshot snap;
  int snapshots_built = 0;
  for (std::uint64_t i = 0; i < obs::Heartbeat::kStride * 3; ++i) {
    hb.tick([&] {
      ++snapshots_built;
      snap.records = i + 1;
      return snap;
    });
  }
  EXPECT_EQ(hb.beats(), 3u);
  EXPECT_EQ(snapshots_built, 3);
  EXPECT_NE(os.str().find("records="), std::string::npos);
}

TEST(HeartbeatTest, LongIntervalSkipsSnapshotWork) {
  std::ostringstream os;
  obs::Heartbeat hb(3600.0, os);
  int snapshots_built = 0;
  for (std::uint64_t i = 0; i < obs::Heartbeat::kStride * 3; ++i) {
    hb.tick([&] {
      ++snapshots_built;
      return obs::HeartbeatSnapshot{};
    });
  }
  EXPECT_EQ(hb.beats(), 0u);
  EXPECT_EQ(snapshots_built, 0);
  EXPECT_TRUE(os.str().empty());
}

TEST(HeartbeatTest, FinishFoldsInTheFinalPartialStride) {
  // The last periodic beat can trail the end of input by up to one stride;
  // the caller's final snapshot may be equally stale. finish() must still
  // report the true processed count: one tick per record means
  // ticks() == records, and the summary reconciles against it.
  std::ostringstream os;
  obs::Heartbeat hb(0.0, os);
  const std::uint64_t processed = obs::Heartbeat::kStride * 2 + 123;
  for (std::uint64_t i = 0; i < processed; ++i) {
    hb.tick([&] {
      obs::HeartbeatSnapshot s;
      s.records = i + 1;
      return s;
    });
  }
  ASSERT_EQ(hb.ticks(), processed);
  // A stale snapshot: what a caller whose counter lags the loop would pass.
  obs::HeartbeatSnapshot stale;
  stale.records = obs::Heartbeat::kStride * 2;  // the last stride boundary
  hb.finish(stale);
  const std::string text = os.str();
  const std::string want = "records=" + std::to_string(processed);
  EXPECT_NE(text.find(want), std::string::npos)
      << "summary must report the true count, got:\n" << text;
}

TEST(HeartbeatTest, FinishAddsTheResumeBaseline) {
  // A resumed run's heartbeat only witnesses the post-resume records; the
  // baseline restores the absolute position in the summary.
  std::ostringstream os;
  obs::Heartbeat hb(3600.0, os);
  hb.set_baseline(5000);
  for (int i = 0; i < 250; ++i) hb.tick([] { return obs::HeartbeatSnapshot{}; });
  hb.finish(obs::HeartbeatSnapshot{});
  EXPECT_NE(os.str().find("records=5250"), std::string::npos) << os.str();
}

TEST(HeartbeatTest, FinishAlwaysEmitsSummary) {
  std::ostringstream os;
  obs::Heartbeat hb(3600.0, os);
  obs::HeartbeatSnapshot snap;
  snap.records = 7;
  hb.finish(snap);
  EXPECT_EQ(hb.beats(), 1u);
  EXPECT_NE(os.str().find("done"), std::string::npos);
  EXPECT_NE(os.str().find("records=7"), std::string::npos);
}

TEST(PipelineMetricsTest, RegistersTheDocumentedNames) {
  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  const Json snapshot = registry.to_json();
  const Json* counters = snapshot.find("counters");
  ASSERT_NE(counters, nullptr);
  for (const char* name :
       {"profiler.accesses", "filter.passed", "filter.dropped",
        "filter.halvings", "profiler.degradations", "stack.cold_misses",
        "stack.swaps"}) {
    EXPECT_NE(counters->find(name), nullptr) << name;
  }
  const Json* histograms = snapshot.find("histograms");
  ASSERT_NE(histograms, nullptr);
  EXPECT_NE(histograms->find("stack.chain_len"), nullptr);
  EXPECT_NE(histograms->find("stack.update_ns"), nullptr);
  ASSERT_NE(metrics.stack.swaps, nullptr);
}

std::vector<Request> zipf_trace(std::size_t n, std::uint64_t footprint,
                                std::uint64_t seed) {
  ZipfianGenerator gen(footprint, 0.9, seed, /*scrambled=*/true);
  return materialize(gen, n);
}

TEST(ProfilerMetricsTest, CountersMatchProfilerAccounting) {
  if (!obs::kHotPathInstrumentation) GTEST_SKIP() << "KRR_METRICS is OFF";
  const auto trace = zipf_trace(50000, 5000, 3);
  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.sampling_rate = 0.25;
  KrrProfiler profiler(cfg);
  profiler.attach_metrics(&metrics);
  for (const Request& r : trace) profiler.access(r);
  profiler.refresh_metrics_gauges();

  EXPECT_EQ(metrics.accesses->value(), profiler.processed());
  EXPECT_EQ(metrics.filter_passed->value(), profiler.sampled());
  EXPECT_EQ(metrics.filter_passed->value() + metrics.filter_dropped->value(),
            profiler.processed());
  EXPECT_EQ(metrics.stack.cold_misses->value(), profiler.stack_depth());
  EXPECT_EQ(metrics.stack.chain_len->count(), profiler.sampled());
  // Every kTimingStride-th stack access is timed.
  EXPECT_EQ(metrics.stack.update_ns->count(),
            (profiler.sampled() + KrrStack::kTimingStride - 1) /
                KrrStack::kTimingStride);
  EXPECT_DOUBLE_EQ(registry.gauge("stack.depth").value(),
                   static_cast<double>(profiler.stack_depth()));
  EXPECT_DOUBLE_EQ(registry.gauge("filter.rate").value(),
                   profiler.current_sampling_rate());
}

TEST(ProfilerMetricsTest, SwapCounterMatchesFigure54Instrumentation) {
  if (!obs::kHotPathInstrumentation) GTEST_SKIP() << "KRR_METRICS is OFF";
  const auto trace = zipf_trace(20000, 2000, 5);
  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  KrrStackConfig cfg;
  cfg.k = corrected_k(5);
  KrrStack stack(cfg);
  stack.attach_metrics(&metrics.stack);
  for (const Request& r : trace) stack.access(r.key);
  EXPECT_EQ(metrics.stack.swaps->value(), stack.swaps_performed());
}

TEST(ProfilerMetricsTest, DegradationEventsAreCounted) {
  if (!obs::kHotPathInstrumentation) GTEST_SKIP() << "KRR_METRICS is OFF";
  const auto trace = zipf_trace(80000, 60000, 7);
  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.max_stack_bytes = 64 * 1024;
  KrrProfiler profiler(cfg);
  profiler.attach_metrics(&metrics);
  for (const Request& r : trace) profiler.access(r);
  ASSERT_GT(profiler.degradation_events(), 0u) << "trace too small to degrade";
  EXPECT_EQ(metrics.degradations->value(), profiler.degradation_events());
  EXPECT_EQ(metrics.filter_halvings->value(), profiler.degradation_events());
}

// The observability invariant: attaching metrics must not perturb the
// model. Same trace, same seed, metrics on vs off — bit-identical MRC.
TEST(ProfilerMetricsTest, MetricsOnAndOffProduceIdenticalMrc) {
  const auto trace = zipf_trace(60000, 8000, 11);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.sampling_rate = 0.5;
  cfg.seed = 42;

  KrrProfiler plain(cfg);
  for (const Request& r : trace) plain.access(r);

  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  KrrProfiler instrumented(cfg);
  instrumented.attach_metrics(&metrics);
  for (const Request& r : trace) instrumented.access(r);

  const MissRatioCurve a = plain.mrc();
  const MissRatioCurve b = instrumented.mrc();
  ASSERT_EQ(a.points().size(), b.points().size());
  for (std::size_t i = 0; i < a.points().size(); ++i) {
    EXPECT_EQ(a.points()[i].size, b.points()[i].size);
    EXPECT_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio);
  }
  EXPECT_EQ(plain.stack_depth(), instrumented.stack_depth());
  EXPECT_EQ(plain.sampled(), instrumented.sampled());
}

TEST(RunReportTest, ZeroAccessRunReportsConfiguredRate) {
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.sampling_rate = 0.25;  // realized exactly by the 2^24 modulus
  KrrProfiler profiler(cfg);
  const RunReport report = profiler.run_report();
  EXPECT_DOUBLE_EQ(report.configured_sampling_rate, 0.25);
  EXPECT_DOUBLE_EQ(report.final_sampling_rate, 0.25);
  EXPECT_EQ(report.records_read, 0u);
  EXPECT_EQ(report.stack_depth, 0u);
}

TEST(RunReportTest, JsonCarriesEveryField) {
  RunReport report;
  report.records_read = 10;
  report.configured_sampling_rate = 0.5;
  report.final_sampling_rate = 0.25;
  const Json j = to_json(report);
  for (const char* key :
       {"records_read", "records_skipped", "checksum_failures",
        "truncated_tail", "degradation_events", "configured_sampling_rate",
        "final_sampling_rate", "stack_depth", "space_overhead_bytes"}) {
    EXPECT_NE(j.find(key), nullptr) << key;
  }
  EXPECT_EQ(j.find("records_read")->as_uint(), 10u);
  EXPECT_DOUBLE_EQ(j.find("final_sampling_rate")->as_double(), 0.25);
}

TEST(IngestMetricsTest, FoldMirrorsTheReadReport) {
  const auto trace = zipf_trace(2000, 200, 13);
  std::stringstream stream;
  write_trace_binary_v2(stream, trace, 256);
  const std::string bytes = stream.str();

  TraceReadReport report;
  auto result = read_trace(stream, {.policy = RecoveryPolicy::kStrict}, &report);
  ASSERT_TRUE(result.is_ok());
  EXPECT_EQ(report.records_read, trace.size());
  EXPECT_EQ(report.bytes_read, bytes.size());

  obs::MetricsRegistry registry;
  fold_ingest_metrics(report, registry);
  EXPECT_EQ(registry.counter("ingest.records_read").value(), trace.size());
  EXPECT_EQ(registry.counter("ingest.bytes_read").value(), bytes.size());
  EXPECT_EQ(registry.counter("ingest.records_skipped").value(), 0u);
  EXPECT_EQ(registry.counter("ingest.checksum_failures").value(), 0u);
}

TEST(SpatialFilterMetricsTest, HalvingsCountOnlyRealHalvings) {
  SpatialFilter f(1.0, 8);
  EXPECT_EQ(f.halvings(), 0u);
  f.halve();  // 8 -> 4
  f.halve();  // 4 -> 2
  f.halve();  // 2 -> 1
  EXPECT_EQ(f.halvings(), 3u);
  f.halve();  // bottomed out: no-op
  EXPECT_EQ(f.halvings(), 3u);
  EXPECT_EQ(f.threshold(), 1u);
}

}  // namespace
}  // namespace krr
