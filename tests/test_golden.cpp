// Golden regression tests: pinned values from seeded runs. These guard the
// deterministic plumbing (PRNG streams, generator layouts, stack update
// order) against silent behavioural drift during refactors. If an
// intentional algorithm change breaks one, re-derive the constant and
// update it alongside the change.

#include <gtest/gtest.h>

#include "core/krr_stack.h"
#include "core/profiler.h"
#include "sim/klru_cache.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"
#include "util/hashing.h"
#include "util/prng.h"

namespace krr {
namespace {

TEST(Golden, SplitMix64KnownAnswers) {
  // Reference values from the SplitMix64 reference implementation.
  SplitMix64 sm(0);
  EXPECT_EQ(sm(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm(), 0x06c45d188009454fULL);
}

TEST(Golden, Hash64KnownAnswers) {
  EXPECT_EQ(hash64(0), 0u);  // finalizer maps 0 to 0
  EXPECT_EQ(hash64(1), 0x5692161d100b05e5ULL);
  EXPECT_EQ(hash64(hash64_inverse(12345)), 12345u);
}

TEST(Golden, XoshiroStreamIsStable) {
  Xoshiro256ss rng(42);
  const std::uint64_t first = rng();
  const std::uint64_t second = rng();
  Xoshiro256ss replay(42);
  EXPECT_EQ(replay(), first);
  EXPECT_EQ(replay(), second);
  EXPECT_NE(first, second);
  // Pin the head of the seed-42 stream.
  Xoshiro256ss pinned(42);
  EXPECT_EQ(pinned(), 1546998764402558742ULL);
}

TEST(Golden, ZipfianStreamHeadIsStable) {
  ZipfianGenerator gen(1000, 0.99, 7);
  std::vector<std::uint64_t> head;
  for (int i = 0; i < 5; ++i) head.push_back(gen.next().key);
  gen.reset();
  for (int i = 0; i < 5; ++i) EXPECT_EQ(gen.next().key, head[i]);
  // Re-derive on intentional generator changes:
  EXPECT_EQ(head, (std::vector<std::uint64_t>{103, 3, 299, 868, 933}));
}

TEST(Golden, MsrSizeModelIsStable) {
  MsrGenerator gen(msr_profile("src2"), 1);
  EXPECT_EQ(gen.size_for_key(0), gen.size_for_key(0));
  EXPECT_EQ(gen.size_for_key(42), 7680u);
  EXPECT_EQ(gen.size_for_key(4242), 5632u);
}

TEST(Golden, KrrStackEvolutionIsStable) {
  KrrStackConfig cfg;
  cfg.k = 3.0;
  cfg.strategy = UpdateStrategy::kBackward;
  cfg.seed = 99;
  KrrStack stack(cfg);
  for (std::uint64_t key = 1; key <= 200; ++key) stack.access(key);
  for (std::uint64_t key = 1; key <= 200; key += 7) stack.access(key);
  EXPECT_EQ(stack.depth(), 200u);
  EXPECT_EQ(stack.key_at(1), 197u);  // last touched key on top
  EXPECT_EQ(stack.swaps_performed(), 2797u);
}

TEST(Golden, KLruSimulatorMissCountIsStable) {
  ZipfianGenerator gen(500, 0.9, 3);
  KLruConfig cfg;
  cfg.capacity = 100;
  cfg.sample_size = 5;
  cfg.seed = 3;
  KLruCache cache(cfg);
  for (int i = 0; i < 20000; ++i) cache.access(gen.next());
  EXPECT_EQ(cache.misses(), 8304u);
}

TEST(Golden, ProfilerMrcIsDeterministicAcrossRuns) {
  auto run = [] {
    ZipfianGenerator gen(1000, 0.9, 5);
    KrrProfilerConfig cfg;
    cfg.k_sample = 5;
    cfg.seed = 7;
    KrrProfiler profiler(cfg);
    for (int i = 0; i < 20000; ++i) profiler.access(gen.next());
    return profiler.mrc();
  };
  const MissRatioCurve a = run();
  const MissRatioCurve b = run();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio);
  }
}

}  // namespace
}  // namespace krr
