// Additional edge-case coverage for spots the module tests leave thin:
// byte-capacity miniature simulation, windowed-profiler curve correctness,
// K-LRU set-operation semantics, and profiler/stack boundary conditions.

#include <gtest/gtest.h>

#include "core/profiler.h"
#include "core/windowed_profiler.h"
#include "sim/klru_cache.h"
#include "sim/miniature.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"

namespace krr {
namespace {

TEST(MiniatureByteMode, ApproximatesByteCapacitySimulation) {
  MsrGenerator gen(msr_profile("src2"), 3, 6000);
  const auto trace = materialize(gen, 100000);
  const auto sizes = capacity_grid_bytes(trace, 8);
  const MissRatioCurve full = sweep_klru(trace, sizes, 5, true, 7);
  MiniatureConfig cfg;
  cfg.rate = 0.2;
  cfg.min_capacity = 4096;  // floor in bytes
  const MissRatioCurve mini = miniature_klru_mrc(trace, sizes, 5, cfg);
  EXPECT_LT(mini.mae(full, sizes), 0.05);
}

TEST(KLruCache, SetOperationAdmitsAndResizes) {
  KLruConfig cfg;
  cfg.capacity = 100;
  cfg.sample_size = 4;
  KLruCache cache(cfg);
  // A set to a new key admits it like a get miss.
  EXPECT_FALSE(cache.access(Request{1, 40, Op::kSet}));
  EXPECT_TRUE(cache.contains(1));
  // A set that grows a resident object evicts until it fits again.
  cache.access(Request{2, 40, Op::kGet});
  cache.access(Request{1, 90, Op::kSet});
  EXPECT_TRUE(cache.contains(1));
  EXPECT_FALSE(cache.contains(2));
  EXPECT_EQ(cache.used(), 90u);
}

TEST(KLruCache, SampleSizeCanChangeMidStream) {
  KLruConfig cfg;
  cfg.capacity = 50;
  cfg.sample_size = 1;
  KLruCache cache(cfg);
  UniformGenerator gen(500, 5);
  for (int i = 0; i < 5000; ++i) cache.access(gen.next());
  cache.set_sample_size(16);
  for (int i = 0; i < 5000; ++i) {
    cache.access(gen.next());
    ASSERT_LE(cache.used(), 50u);
  }
  EXPECT_THROW(cache.set_sample_size(0), std::invalid_argument);
}

TEST(WindowedProfiler, CurveMatchesSingleProfilerWithinFirstWindow) {
  // Before any retirement the windowed view *is* a single profiler over
  // the whole history, so their curves must agree.
  WindowedKrrConfig wc;
  wc.window = 100000;  // never retires in this test
  wc.profiler.k_sample = 5;
  wc.profiler.seed = 9;
  WindowedKrrProfiler windowed(wc);
  KrrProfilerConfig pc = wc.profiler;
  pc.seed = wc.profiler.seed + 1;  // windowed offsets its seeds by 1
  KrrProfiler single(pc);
  ZipfianGenerator gen(800, 0.9, 3);
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    windowed.access(r);
    single.access(r);
  }
  const MissRatioCurve a = windowed.mrc();
  const MissRatioCurve b = single.mrc();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio);
  }
}

TEST(KrrProfiler, SingleObjectTrace) {
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  KrrProfiler profiler(cfg);
  for (int i = 0; i < 100; ++i) profiler.access(Request{42, 1, Op::kGet});
  const MissRatioCurve mrc = profiler.mrc();
  // 1 cold miss, 99 hits at distance 1.
  EXPECT_DOUBLE_EQ(mrc.eval(1.0), 0.01);
  EXPECT_EQ(profiler.stack_depth(), 1u);
}

TEST(KrrProfiler, EmptyProfilerYieldsEmptyCurve) {
  KrrProfilerConfig cfg;
  cfg.k_sample = 2;
  KrrProfiler profiler(cfg);
  EXPECT_TRUE(profiler.mrc().empty());
  EXPECT_EQ(profiler.processed(), 0u);
}

TEST(KrrProfiler, FractionalKSampleIsAccepted) {
  // DLRU-style controllers may interpolate K; the model must accept
  // non-integer sampling sizes.
  KrrProfilerConfig cfg;
  cfg.k_sample = 2.5;
  KrrProfiler profiler(cfg);
  ZipfianGenerator gen(500, 0.9, 7);
  for (int i = 0; i < 10000; ++i) profiler.access(gen.next());
  EXPECT_GT(profiler.mrc().size(), 10u);
}

TEST(SweepHelpers, CapacityGridsMatchWorkingSetSizes) {
  ZipfianGenerator gen(300, 0.5, 9, false, 100);
  const auto trace = materialize(gen, 20000);
  const auto objects = capacity_grid_objects(trace, 4);
  EXPECT_DOUBLE_EQ(objects.back(), static_cast<double>(count_distinct(trace)));
  const auto bytes = capacity_grid_bytes(trace, 4);
  EXPECT_DOUBLE_EQ(bytes.back(), static_cast<double>(working_set_bytes(trace)));
}

}  // namespace
}  // namespace krr
