#include <gtest/gtest.h>

#include <sstream>
#include <thread>

#include "util/options.h"
#include "util/stopwatch.h"
#include "util/table.h"

namespace krr {
namespace {

TEST(Table, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(Table, FormatsAlignedColumns) {
  Table t({"name", "value"});
  t.add("x", 1);
  t.add("longer", 2.5);
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
  EXPECT_NE(out.find("2.5"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, CsvOutputIsCommaSeparated) {
  Table t({"a", "b"});
  t.add(1, 2);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, AcceptsMixedCellTypes) {
  Table t({"s", "i", "u", "d"});
  t.add(std::string("str"), -7, 42u, 0.125);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "s,i,u,d\nstr,-7,42,0.125\n");
}

TEST(FormatDouble, UsesCompactPrecision) {
  EXPECT_EQ(format_double(0.5), "0.5");
  EXPECT_EQ(format_double(1.0), "1");
  EXPECT_EQ(format_double(0.000123456789, 3), "0.000123");
}

TEST(Options, ParsesNamedAndPositional) {
  const char* argv[] = {"prog", "--alpha=0.5", "--flag", "positional",
                        "--n=100"};
  Options opts(5, const_cast<char**>(argv));
  EXPECT_TRUE(opts.has("flag"));
  EXPECT_FALSE(opts.has("missing"));
  EXPECT_DOUBLE_EQ(opts.get_double("alpha", 0.0), 0.5);
  EXPECT_EQ(opts.get_int("n", 0), 100);
  EXPECT_EQ(opts.get_string("nope", "def"), "def");
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "positional");
}

TEST(Options, EmptyValueFallsBackToDefault) {
  const char* argv[] = {"prog", "--n="};
  Options opts(2, const_cast<char**>(argv));
  EXPECT_EQ(opts.get_int("n", 7), 7);
}

TEST(Scaled, HonorsMinimum) {
  // bench_scale() defaults to 1 in the test environment.
  EXPECT_EQ(scaled(100), 100u);
  EXPECT_EQ(scaled(0, 5), 5u);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double first = watch.seconds();
  EXPECT_GE(first, 0.015);
  EXPECT_LT(first, 5.0);
  watch.reset();
  EXPECT_LT(watch.seconds(), first);
  EXPECT_GE(watch.millis(), 0.0);
}

}  // namespace
}  // namespace krr
