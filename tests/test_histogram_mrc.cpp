#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>

#include "util/histogram.h"
#include "util/mrc.h"

namespace krr {
namespace {

TEST(DistanceHistogram, RejectsZeroQuantum) {
  EXPECT_THROW(DistanceHistogram(0), std::invalid_argument);
}

TEST(DistanceHistogram, TracksTotalsAndInfinite) {
  DistanceHistogram h;
  h.record(3);
  h.record(3, 2.0);
  h.record_infinite(1.5);
  EXPECT_DOUBLE_EQ(h.total_weight(), 4.5);
  EXPECT_DOUBLE_EQ(h.infinite_weight(), 1.5);
  EXPECT_EQ(h.bin_count(), 1u);
}

TEST(DistanceHistogram, QuantumRoundsUp) {
  DistanceHistogram h(10);
  h.record(1);
  h.record(10);
  h.record(11);
  const auto bins = h.sorted_bins();
  ASSERT_EQ(bins.size(), 2u);
  EXPECT_EQ(bins[0].first, 10u);
  EXPECT_DOUBLE_EQ(bins[0].second, 2.0);
  EXPECT_EQ(bins[1].first, 20u);
}

TEST(DistanceHistogram, ToMrcComputesTailProbabilities) {
  DistanceHistogram h;
  // 4 reuses at distance 2, 4 at distance 5, 2 cold.
  for (int i = 0; i < 4; ++i) h.record(2);
  for (int i = 0; i < 4; ++i) h.record(5);
  h.record_infinite(2.0);
  const MissRatioCurve mrc = h.to_mrc();
  EXPECT_DOUBLE_EQ(mrc.eval(0), 1.0);
  EXPECT_DOUBLE_EQ(mrc.eval(1), 1.0);   // nothing fits below distance 2
  EXPECT_DOUBLE_EQ(mrc.eval(2), 0.6);   // distance-2 reuses hit
  EXPECT_DOUBLE_EQ(mrc.eval(4), 0.6);
  EXPECT_DOUBLE_EQ(mrc.eval(5), 0.2);   // only cold misses remain
  EXPECT_DOUBLE_EQ(mrc.eval(1000), 0.2);
}

TEST(DistanceHistogram, EmptyHistogramYieldsEmptyCurve) {
  DistanceHistogram h;
  EXPECT_TRUE(h.to_mrc().empty());
}

TEST(DistanceHistogram, MergeAddsWeights) {
  DistanceHistogram a, b;
  a.record(1);
  b.record(1, 2.0);
  b.record(7);
  b.record_infinite();
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.total_weight(), 5.0);
  EXPECT_EQ(a.sorted_bins().size(), 2u);
  DistanceHistogram c(4);
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

TEST(DistanceHistogram, ClearResets) {
  DistanceHistogram h;
  h.record(9);
  h.record_infinite();
  h.clear();
  EXPECT_DOUBLE_EQ(h.total_weight(), 0.0);
  EXPECT_EQ(h.bin_count(), 0u);
}

TEST(MissRatioCurve, EmptyCurveEvaluatesToOne) {
  MissRatioCurve curve;
  EXPECT_DOUBLE_EQ(curve.eval(100), 1.0);
  EXPECT_DOUBLE_EQ(curve.max_size(), 0.0);
}

TEST(MissRatioCurve, StepInterpolationUsesLastBreakpointAtOrBelow) {
  MissRatioCurve curve({{0, 1.0}, {10, 0.5}, {20, 0.25}});
  EXPECT_DOUBLE_EQ(curve.eval(0), 1.0);
  EXPECT_DOUBLE_EQ(curve.eval(9.99), 1.0);
  EXPECT_DOUBLE_EQ(curve.eval(10), 0.5);
  EXPECT_DOUBLE_EQ(curve.eval(15), 0.5);
  EXPECT_DOUBLE_EQ(curve.eval(20), 0.25);
  EXPECT_DOUBLE_EQ(curve.eval(1e9), 0.25);
}

TEST(MissRatioCurve, ConstructorSortsAndDeduplicates) {
  MissRatioCurve curve({{20, 0.2}, {10, 0.5}, {10, 0.4}, {0, 1.0}});
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.eval(10), 0.4);  // later duplicate wins
  EXPECT_DOUBLE_EQ(curve.max_size(), 20.0);
}

TEST(MissRatioCurve, AddPointKeepsOrder) {
  MissRatioCurve curve;
  curve.add_point(5, 0.5);
  curve.add_point(1, 0.9);
  curve.add_point(3, 0.7);
  curve.add_point(3, 0.6);  // overwrite
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve.points()[0].size, 1.0);
  EXPECT_DOUBLE_EQ(curve.points()[1].miss_ratio, 0.6);
}

TEST(MissRatioCurve, MaeAveragesAbsoluteDifferences) {
  MissRatioCurve a({{0, 1.0}, {10, 0.4}});
  MissRatioCurve b({{0, 1.0}, {10, 0.6}});
  EXPECT_DOUBLE_EQ(a.mae(b, {5, 10, 20}), (0.0 + 0.2 + 0.2) / 3.0);
  EXPECT_DOUBLE_EQ(a.max_error(b, {5, 10, 20}), 0.2);
  EXPECT_THROW(a.mae(b, {}), std::invalid_argument);
}

TEST(MissRatioCurve, CsvOutputHasHeaderAndRows) {
  MissRatioCurve curve({{0, 1.0}, {4, 0.25}});
  std::ostringstream os;
  curve.write_csv(os);
  EXPECT_EQ(os.str(), "size,miss_ratio\n0,1\n4,0.25\n");
  std::ostringstream labeled;
  curve.write_csv(labeled, "x");
  EXPECT_EQ(labeled.str(), "label,size,miss_ratio\nx,0,1\nx,4,0.25\n");
}

TEST(EvenlySpacedSizes, CoversUpToMax) {
  const auto sizes = evenly_spaced_sizes(100.0, 4);
  ASSERT_EQ(sizes.size(), 4u);
  EXPECT_DOUBLE_EQ(sizes[0], 25.0);
  EXPECT_DOUBLE_EQ(sizes[3], 100.0);
  EXPECT_THROW(evenly_spaced_sizes(0.0, 4), std::invalid_argument);
  EXPECT_THROW(evenly_spaced_sizes(10.0, 0), std::invalid_argument);
}

}  // namespace
}  // namespace krr
