#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/fenwick.h"
#include "util/prng.h"

namespace krr {
namespace {

TEST(Fenwick, EmptyTreeHasZeroSize) {
  Fenwick<std::int64_t> tree;
  EXPECT_EQ(tree.size(), 0u);
}

TEST(Fenwick, SingleElement) {
  Fenwick<std::int64_t> tree(1);
  tree.add(1, 5);
  EXPECT_EQ(tree.prefix_sum(1), 5);
  EXPECT_EQ(tree.prefix_sum(0), 0);
}

TEST(Fenwick, PrefixSumsMatchNaiveAccumulation) {
  constexpr std::size_t kN = 257;
  Fenwick<std::int64_t> tree(kN);
  std::vector<std::int64_t> values(kN + 1, 0);
  Xoshiro256ss rng(1);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t i = 1 + rng.next_below(kN);
    const std::int64_t delta = static_cast<std::int64_t>(rng.next_below(100)) - 50;
    tree.add(i, delta);
    values[i] += delta;
  }
  std::int64_t running = 0;
  for (std::size_t i = 1; i <= kN; ++i) {
    running += values[i];
    EXPECT_EQ(tree.prefix_sum(i), running) << "at " << i;
  }
}

TEST(Fenwick, RangeSumMatchesDifference) {
  Fenwick<std::int64_t> tree(64);
  for (std::size_t i = 1; i <= 64; ++i) tree.add(i, static_cast<std::int64_t>(i));
  for (std::size_t lo = 1; lo <= 64; lo += 7) {
    for (std::size_t hi = lo; hi <= 64; hi += 5) {
      std::int64_t expected = 0;
      for (std::size_t i = lo; i <= hi; ++i) expected += static_cast<std::int64_t>(i);
      EXPECT_EQ(tree.range_sum(lo, hi), expected);
    }
  }
}

TEST(Fenwick, EmptyRangeSumIsZero) {
  Fenwick<std::int64_t> tree(8);
  tree.add(3, 10);
  EXPECT_EQ(tree.range_sum(5, 4), 0);
  EXPECT_EQ(tree.range_sum(4, 3), 0);
}

TEST(Fenwick, EnsureSizePreservesContent) {
  Fenwick<std::int64_t> tree(4);
  tree.add(1, 1);
  tree.add(3, 3);
  tree.ensure_size(1000);
  EXPECT_GE(tree.size(), 1000u);
  EXPECT_EQ(tree.prefix_sum(3), 4);
  tree.add(900, 7);
  EXPECT_EQ(tree.prefix_sum(1000), 11);
}

TEST(Fenwick, GrowthIsIdempotentForSmallerRequests) {
  Fenwick<std::int64_t> tree(100);
  tree.add(50, 5);
  tree.ensure_size(10);  // no-op
  EXPECT_EQ(tree.prefix_sum(100), 5);
}

TEST(Fenwick, DoubleValuedTreeAccumulates) {
  Fenwick<double> tree(16);
  for (std::size_t i = 1; i <= 16; ++i) tree.add(i, 0.5);
  EXPECT_DOUBLE_EQ(tree.prefix_sum(16), 8.0);
}

TEST(Fenwick, ClearZeroesEverything) {
  Fenwick<std::int64_t> tree(32);
  for (std::size_t i = 1; i <= 32; ++i) tree.add(i, 2);
  tree.clear();
  EXPECT_EQ(tree.prefix_sum(32), 0);
}

}  // namespace
}  // namespace krr
