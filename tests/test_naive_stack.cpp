#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/lru_stack.h"
#include "baselines/naive_stack.h"
#include "trace/generator.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key) { return Request{key, 1, Op::kGet}; }

TEST(GenericMattsonStack, RequiresPriorityFunction) {
  EXPECT_THROW(GenericMattsonStack(nullptr, 1), std::invalid_argument);
  EXPECT_THROW(GenericMattsonStack::krr(0.5, 1), std::invalid_argument);
}

TEST(GenericMattsonStack, LruVariantMatchesLruStackProfiler) {
  // With stay probability 0 the generic stack is the exact LRU stack, so
  // every distance must equal the Fenwick profiler's, deterministically.
  auto mattson = GenericMattsonStack::lru();
  LruStackProfiler fenwick;
  ZipfianGenerator gen(300, 0.9, 5);
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    ASSERT_EQ(mattson.access(r), fenwick.access(r));
  }
}

TEST(GenericMattsonStack, StackIsAlwaysAPermutationOfSeenKeys) {
  auto stack = GenericMattsonStack::krr(2.8, 3);
  std::set<std::uint64_t> seen;
  ZipfianGenerator gen(100, 0.5, 7);
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.next();
    seen.insert(r.key);
    stack.access(r);
  }
  EXPECT_EQ(stack.depth(), seen.size());
  std::set<std::uint64_t> on_stack(stack.stack().begin(), stack.stack().end());
  EXPECT_EQ(on_stack, seen);
}

TEST(GenericMattsonStack, ReferencedObjectMovesToTop) {
  auto stack = GenericMattsonStack::rr(1);
  for (std::uint64_t k = 1; k <= 50; ++k) stack.access(get(k));
  stack.access(get(25));
  EXPECT_EQ(stack.stack().front(), 25u);
}

TEST(GenericMattsonStack, RrDistancesAreUniformOverStackForStaticSet) {
  // Mattson showed RR's stack eviction is equivalent to uniform random
  // eviction; under a uniform IRM workload over M resident objects, reuse
  // distances should spread across [1, M] rather than concentrate.
  auto stack = GenericMattsonStack::rr(11);
  UniformGenerator gen(64, 2);
  for (int i = 0; i < 30000; ++i) stack.access(gen.next());
  const auto bins = stack.histogram().sorted_bins();
  double shallow = 0.0, deep = 0.0, total = 0.0;
  for (const auto& [d, w] : bins) {
    total += w;
    if (d <= 21) shallow += w;
    if (d > 43) deep += w;
  }
  // Roughly one third of reuses in each third of the stack.
  EXPECT_NEAR(shallow / total, 1.0 / 3.0, 0.08);
  EXPECT_NEAR(deep / total, 1.0 / 3.0, 0.08);
}

TEST(GenericMattsonStack, HighKBehavesLikeLru) {
  // With a huge exponent the stay probability vanishes at every position
  // reached by the update, so distances coincide with exact LRU.
  auto krr_stack = GenericMattsonStack::krr(1e6, 13);
  LruStackProfiler lru;
  ZipfianGenerator gen(200, 0.8, 17);
  int mismatches = 0;
  for (int i = 0; i < 10000; ++i) {
    const Request r = gen.next();
    if (krr_stack.access(r) != lru.access(r)) ++mismatches;
  }
  // ((i-1)/i)^1e6 is not exactly 0 for large i, so allow a tiny number of
  // divergences (each divergence perturbs subsequent distances).
  EXPECT_LT(mismatches, 100);
}

TEST(GenericMattsonStack, ColdReferencesRecordInfinite) {
  auto stack = GenericMattsonStack::rr(1);
  stack.access(get(1));
  stack.access(get(2));
  EXPECT_DOUBLE_EQ(stack.histogram().infinite_weight(), 2.0);
  EXPECT_EQ(stack.access(get(3)), 0u);
}

}  // namespace
}  // namespace krr
