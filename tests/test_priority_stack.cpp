#include <gtest/gtest.h>

#include "baselines/lru_stack.h"
#include "baselines/priority_stack.h"
#include "sim/lru_cache.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/synthetic.h"
#include "trace/zipf.h"

namespace krr {
namespace {

Request get(std::uint64_t key) { return Request{key, 1, Op::kGet}; }

TEST(PreprocessNextUses, ComputesForwardIndices) {
  const std::vector<Request> trace = {get(1), get(2), get(1), get(3), get(2), get(1)};
  const auto next = preprocess_next_uses(trace);
  EXPECT_EQ(next[0], 2u);
  EXPECT_EQ(next[1], 4u);
  EXPECT_EQ(next[2], 5u);
  EXPECT_EQ(next[3], PriorityMattsonStack::kNever);
  EXPECT_EQ(next[4], PriorityMattsonStack::kNever);
  EXPECT_EQ(next[5], PriorityMattsonStack::kNever);
}

TEST(PriorityStack, LruPolicyMatchesFenwickProfiler) {
  PriorityMattsonStack stack(PriorityPolicy::kLru);
  LruStackProfiler fenwick;
  ZipfianGenerator gen(400, 0.9, 3);
  for (int i = 0; i < 20000; ++i) {
    const Request r = gen.next();
    ASSERT_EQ(stack.access(r), fenwick.access(r));
  }
}

TEST(PriorityStack, OptMrcMatchesBeladySimulationExactly) {
  // OPT satisfies inclusion, so the one-pass stack MRC must equal the
  // per-size Belady simulation at every capacity.
  MsrGenerator gen(msr_profile("hm"), 7, 500, 1);
  const auto trace = materialize(gen, 20000);
  const auto next = preprocess_next_uses(trace);
  PriorityMattsonStack stack(PriorityPolicy::kOpt);
  for (std::size_t i = 0; i < trace.size(); ++i) stack.access(trace[i], next[i]);
  const MissRatioCurve mrc = stack.mrc();
  for (std::uint64_t c : {10, 50, 120, 250, 400}) {
    EXPECT_DOUBLE_EQ(mrc.eval(static_cast<double>(c)),
                     simulate_opt_miss_ratio(trace, c))
        << "capacity " << c;
  }
}

TEST(PriorityStack, LfuMrcMatchesLfuSimulationExactly) {
  ZipfianGenerator gen(400, 1.0, 11, true);
  const auto trace = materialize(gen, 20000);
  PriorityMattsonStack stack(PriorityPolicy::kLfu);
  for (const Request& r : trace) stack.access(r);
  const MissRatioCurve mrc = stack.mrc();
  for (std::uint64_t c : {10, 50, 120, 250, 399}) {
    EXPECT_DOUBLE_EQ(mrc.eval(static_cast<double>(c)),
                     simulate_lfu_miss_ratio(trace, c))
        << "capacity " << c;
  }
}

TEST(PriorityStack, OptDominatesEveryOtherPolicy) {
  // Belady's MIN is optimal: at every size its miss ratio lower-bounds
  // LRU's, LFU's and MRU's.
  MsrGenerator gen(msr_profile("web"), 13, 800, 1);
  const auto trace = materialize(gen, 30000);
  const auto next = preprocess_next_uses(trace);
  PriorityMattsonStack opt(PriorityPolicy::kOpt);
  PriorityMattsonStack lru(PriorityPolicy::kLru);
  PriorityMattsonStack lfu(PriorityPolicy::kLfu);
  PriorityMattsonStack mru(PriorityPolicy::kMru);
  for (std::size_t i = 0; i < trace.size(); ++i) {
    opt.access(trace[i], next[i]);
    lru.access(trace[i]);
    lfu.access(trace[i]);
    mru.access(trace[i]);
  }
  for (double c : capacity_grid_objects(trace, 10)) {
    const double best = opt.mrc().eval(c);
    EXPECT_LE(best, lru.mrc().eval(c) + 1e-12) << c;
    EXPECT_LE(best, lfu.mrc().eval(c) + 1e-12) << c;
    EXPECT_LE(best, mru.mrc().eval(c) + 1e-12) << c;
  }
}

TEST(PriorityStack, MruBeatsLruOnLoops) {
  // The classic result: for a loop larger than the cache, MRU retains a
  // static subset and hits on it while LRU thrashes to zero.
  LoopGenerator gen(300);
  const auto trace = materialize(gen, 15000);
  PriorityMattsonStack mru(PriorityPolicy::kMru);
  PriorityMattsonStack lru(PriorityPolicy::kLru);
  for (const Request& r : trace) {
    mru.access(r);
    lru.access(r);
  }
  EXPECT_GT(lru.mrc().eval(150), 0.99);
  EXPECT_LT(mru.mrc().eval(150), 0.60);
}

TEST(PriorityStack, StackRemainsPermutation) {
  PriorityMattsonStack stack(PriorityPolicy::kLfu);
  ZipfianGenerator gen(100, 0.8, 17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const Request r = gen.next();
    seen.insert(r.key);
    stack.access(r);
  }
  EXPECT_EQ(stack.depth(), seen.size());
  std::set<std::uint64_t> on_stack(stack.stack().begin(), stack.stack().end());
  EXPECT_EQ(on_stack, seen);
}

TEST(PriorityStack, SimulatorsValidateArguments) {
  EXPECT_THROW(simulate_opt_miss_ratio({get(1)}, 0), std::invalid_argument);
  EXPECT_THROW(simulate_lfu_miss_ratio({get(1)}, 0), std::invalid_argument);
}

TEST(PriorityStack, PolicyNamesAreStable) {
  EXPECT_EQ(to_string(PriorityPolicy::kLru), "lru");
  EXPECT_EQ(to_string(PriorityPolicy::kMru), "mru");
  EXPECT_EQ(to_string(PriorityPolicy::kLfu), "lfu");
  EXPECT_EQ(to_string(PriorityPolicy::kOpt), "opt");
}

}  // namespace
}  // namespace krr
