// Generic sharded runner conformance: any registry model declaring
// spatial_sampling runs behind the same ShardFanout pipeline the KRR
// profiler uses, and the contract carries over — results depend only on
// (options, trace), never on the thread count; the merged curve tracks the
// serial model statistically; shard failures propagate (strict) or degrade
// the run (best-effort with survivor rescale); memory budgets are enforced
// per shard from the consuming thread.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/sharded_estimator.h"
#include "obs/metrics.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"
#include "util/faultpoint.h"
#include "util/mrc.h"
#include "util/status.h"

namespace krr {
namespace {

// The spatial_sampling models the generic runner wraps, paired with their
// registry-level sharded adapters.
const std::string kBaseModels[] = {"shards", "shards_fixed", "aet"};

std::string sharded_name(const std::string& base) { return base + "_sharded"; }

std::vector<Request> zipf_trace(std::size_t n, std::uint64_t footprint,
                                double alpha = 0.9, std::uint64_t seed = 3) {
  ZipfianGenerator gen(footprint, alpha, seed, /*scrambled=*/true);
  return materialize(gen, n);
}

std::unique_ptr<MrcEstimator> make(const std::string& name,
                                   const EstimatorOptions& options = {}) {
  auto est = EstimatorRegistry::instance().create(name, options);
  EXPECT_TRUE(est.is_ok()) << name << ": " << est.status().message();
  return std::move(*est);
}

MissRatioCurve run(MrcEstimator& est, const std::vector<Request>& trace,
                   const std::vector<double>& sizes = {}) {
  for (const Request& r : trace) est.access(r);
  est.finish();
  return est.mrc(sizes);
}

void expect_identical(const MissRatioCurve& a, const MissRatioCurve& b,
                      const std::string& context) {
  ASSERT_EQ(a.size(), b.size()) << context;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_DOUBLE_EQ(a.points()[i].size, b.points()[i].size) << context;
    ASSERT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio)
        << context;
  }
}

double mae_on_grid(const MissRatioCurve& a, const MissRatioCurve& b,
                   std::size_t n_sizes = 40) {
  const std::vector<double> sizes = evenly_spaced_sizes(a.max_size(), n_sizes);
  return a.mae(b, sizes);
}

class ShardedZoo : public ::testing::TestWithParam<std::string> {};

TEST_P(ShardedZoo, SingleShardInlineIsBitIdenticalToSerialBase) {
  // shards=1, threads=1 must be the serial model: one shard sees the whole
  // stream, shard_count=1 makes every rescale a multiply by 1.0, and the
  // merge is a no-op on a single survivor.
  const auto trace = zipf_trace(40000, 3000);
  EstimatorOptions base;
  base.set("seed", "11");
  auto serial = make(GetParam(), base);
  EstimatorOptions sharded_opts = base;
  sharded_opts.set("shards", "1");
  sharded_opts.set("threads", "1");
  auto sharded = make(sharded_name(GetParam()), sharded_opts);
  const MissRatioCurve expected = run(*serial, trace);
  const MissRatioCurve got = run(*sharded, trace);
  expect_identical(expected, got, GetParam());
}

TEST_P(ShardedZoo, ResultsNeverDependOnTheThreadCount) {
  const auto trace = zipf_trace(60000, 5000);
  EstimatorOptions base;
  base.set("seed", "7");
  base.set("shards", "4");
  MissRatioCurve reference;
  for (unsigned threads : {1u, 2u, 4u}) {
    EstimatorOptions opts = base;
    opts.set("threads", std::to_string(threads));
    auto est = make(sharded_name(GetParam()), opts);
    const MissRatioCurve curve = run(*est, trace);
    if (threads == 1) {
      reference = curve;
      continue;
    }
    expect_identical(reference, curve,
                     GetParam() + " threads=" + std::to_string(threads));
  }
}

TEST_P(ShardedZoo, MergedCurveTracksSerialOnZipf) {
  const auto trace = zipf_trace(200000, 10000);
  auto serial = make(GetParam());
  const MissRatioCurve serial_curve = run(*serial, trace);
  for (std::uint32_t shards : {2u, 4u}) {
    EstimatorOptions opts;
    opts.set("shards", std::to_string(shards));
    opts.set("threads", "2");
    auto est = make(sharded_name(GetParam()), opts);
    const MissRatioCurve merged = run(*est, trace);
    EXPECT_LE(mae_on_grid(serial_curve, merged), 0.02)
        << GetParam() << " shards=" << shards;
  }
}

TEST_P(ShardedZoo, MergedCurveTracksSerialOnMsrTrace) {
  MsrGenerator gen(msr_profile("web"), 5, 12000, 1);
  const auto trace = materialize(gen, 150000);
  auto serial = make(GetParam());
  const MissRatioCurve serial_curve = run(*serial, trace);
  EstimatorOptions opts;
  opts.set("shards", "4");
  opts.set("threads", "3");
  auto est = make(sharded_name(GetParam()), opts);
  const MissRatioCurve merged = run(*est, trace);
  EXPECT_LE(mae_on_grid(serial_curve, merged), 0.02) << GetParam();
}

TEST_P(ShardedZoo, RunReportAggregatesAcrossShards) {
  const auto trace = zipf_trace(30000, 2000);
  EstimatorOptions opts;
  opts.set("shards", "3");
  opts.set("threads", "2");
  auto est = make(sharded_name(GetParam()), opts);
  run(*est, trace);
  const RunReport report = est->run_report();
  EXPECT_EQ(report.records_read, trace.size());
  EXPECT_EQ(report.shards_failed, 0u);
  EXPECT_GT(report.configured_sampling_rate, 0.0);
  const obs::HeartbeatSnapshot snap = est->snapshot();
  EXPECT_EQ(snap.records, trace.size());
}

TEST_P(ShardedZoo, CheckpointRoundTripResumesBitIdentical) {
  // Composite quiesce-then-snapshot checkpointing: a mid-stream save from
  // the producer thread, restored into a fresh estimator that consumes the
  // rest of the stream, must land on exactly the uninterrupted curve.
  const auto trace = zipf_trace(60000, 5000);
  const std::size_t cut = 36000;
  EstimatorOptions opts;
  opts.set("seed", "11");
  opts.set("shards", "3");
  opts.set("threads", "2");
  auto uninterrupted = make(sharded_name(GetParam()), opts);
  const MissRatioCurve expected = run(*uninterrupted, trace);
  auto first = make(sharded_name(GetParam()), opts);
  for (std::size_t i = 0; i < cut; ++i) first->access(trace[i]);
  std::string blob;
  ASSERT_TRUE(first->save_state(&blob).is_ok()) << GetParam();
  auto resumed = make(sharded_name(GetParam()), opts);
  ASSERT_TRUE(resumed->load_state(blob).is_ok()) << GetParam();
  for (std::size_t i = cut; i < trace.size(); ++i) resumed->access(trace[i]);
  resumed->finish();
  EXPECT_EQ(resumed->processed(), trace.size()) << GetParam();
  expect_identical(expected, resumed->mrc(), GetParam());
}

TEST_P(ShardedZoo, CheckpointRefusedAfterMerge) {
  // mrc() folds the shards together in place; a snapshot taken afterwards
  // would capture the merged aggregate as if it were shard state.
  EstimatorOptions opts;
  opts.set("shards", "2");
  auto est = make(sharded_name(GetParam()), opts);
  const auto trace = zipf_trace(5000, 500);
  run(*est, trace);
  std::string blob;
  const Status saved = est->save_state(&blob);
  ASSERT_FALSE(saved.is_ok()) << GetParam();
  EXPECT_EQ(saved.code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(SpatialSamplingModels, ShardedZoo,
                         ::testing::ValuesIn(kBaseModels),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Replay recovery: a shard worker killed mid-run by a deterministic fault
// plan is resurrected from its mini-checkpoint + journal tail, and the
// merged curve is exactly the unfaulted run's — across the zoo and across
// thread counts. Fault plans are process-global, so every test arms after
// its clean baseline run and disarms on exit.
// ---------------------------------------------------------------------------

const std::string kRecoveryModels[] = {"krr", "shards", "aet"};

class RecoveryZoo : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { faults::disarm(); }
};

TEST_P(RecoveryZoo, ReplayResurrectionIsBitIdenticalToUnfaulted) {
  const auto trace = zipf_trace(60000, 5000);
  for (unsigned threads : {1u, 4u}) {
    EstimatorOptions opts;
    opts.set("seed", "11");
    opts.set("shards", "4");
    opts.set("threads", std::to_string(threads));
    faults::disarm();
    auto clean = make(sharded_name(GetParam()), opts);
    const MissRatioCurve expected = run(*clean, trace);

    EstimatorOptions replay_opts = opts;
    replay_opts.set("failure_mode", "replay");
    ASSERT_TRUE(faults::arm("sharded.worker#2@hit=4000").is_ok());
    auto faulted = make(sharded_name(GetParam()), replay_opts);
    const MissRatioCurve got = run(*faulted, trace);
    faults::disarm();

    const std::string context =
        GetParam() + " threads=" + std::to_string(threads);
    expect_identical(expected, got, context);
    const RunReport report = faulted->run_report();
    EXPECT_EQ(report.shards_resurrected, 1u) << context;
    EXPECT_EQ(report.shards_failed, 0u) << context;
    EXPECT_GT(report.replayed_records, 0u) << context;
    EXPECT_EQ(report.recovery, "replayed") << context;
    EXPECT_EQ(report.dropped_records, 0u) << context;
  }
}

TEST_P(RecoveryZoo, ExceededJournalWindowFallsBackToSurvivorRescale) {
  // An 8-record journal with snapshots effectively disabled cannot cover
  // the 4000 records pending at the crash, so replay must give up, drop the
  // shard, and rescale the survivors — a degraded but still-sound curve.
  const auto trace = zipf_trace(100000, 8000);
  EstimatorOptions opts;
  opts.set("seed", "11");
  opts.set("shards", "4");
  opts.set("threads", "2");
  faults::disarm();
  auto clean = make(sharded_name(GetParam()), opts);
  const MissRatioCurve expected = run(*clean, trace);

  EstimatorOptions replay_opts = opts;
  replay_opts.set("failure_mode", "replay");
  replay_opts.set("journal_records", "8");
  replay_opts.set("snapshot_stride", "1000000");
  ASSERT_TRUE(faults::arm("sharded.worker#2@hit=4000").is_ok());
  auto faulted = make(sharded_name(GetParam()), replay_opts);
  const MissRatioCurve got = run(*faulted, trace);
  faults::disarm();

  const RunReport report = faulted->run_report();
  EXPECT_EQ(report.shards_resurrected, 0u) << GetParam();
  EXPECT_EQ(report.shards_failed, 1u) << GetParam();
  EXPECT_EQ(report.recovery, "rescaled") << GetParam();
  EXPECT_GT(report.dropped_records, 0u) << GetParam();
  EXPECT_LE(mae_on_grid(expected, got), 0.02) << GetParam();
}

TEST_P(RecoveryZoo, RepeatedCrashesOnOneShardAllReplay) {
  // every=K keeps killing the same worker; each crash replays from the
  // latest snapshot and the result still matches the unfaulted run.
  const auto trace = zipf_trace(40000, 3000);
  EstimatorOptions opts;
  opts.set("seed", "3");
  opts.set("shards", "2");
  opts.set("threads", "2");
  faults::disarm();
  auto clean = make(sharded_name(GetParam()), opts);
  const MissRatioCurve expected = run(*clean, trace);

  EstimatorOptions replay_opts = opts;
  replay_opts.set("failure_mode", "replay");
  ASSERT_TRUE(faults::arm("sharded.worker#0@every=5000").is_ok());
  auto faulted = make(sharded_name(GetParam()), replay_opts);
  const MissRatioCurve got = run(*faulted, trace);
  faults::disarm();

  expect_identical(expected, got, GetParam());
  const RunReport report = faulted->run_report();
  EXPECT_GE(report.shards_resurrected, 2u) << GetParam();
  EXPECT_EQ(report.recovery, "replayed") << GetParam();
}

INSTANTIATE_TEST_SUITE_P(ReplayModels, RecoveryZoo,
                         ::testing::ValuesIn(kRecoveryModels),
                         [](const auto& info) { return info.param; });

TEST(ShardRecovery, QueuePushFaultDropsRecordUnderRecoveringModes) {
  const auto trace = zipf_trace(20000, 2000);
  for (const char* mode : {"replay", "best_effort"}) {
    EstimatorOptions opts;
    opts.set("shards", "2");
    opts.set("threads", "2");
    opts.set("failure_mode", mode);
    ASSERT_TRUE(faults::arm("sharded.queue_push@hit=100").is_ok());
    auto est = make("shards_sharded", opts);
    for (const Request& r : trace) est->access(r);
    EXPECT_NO_THROW(est->finish()) << mode;
    faults::disarm();
    const RunReport report = est->run_report();
    EXPECT_EQ(report.dropped_records, 1u) << mode;
    EXPECT_EQ(report.shards_failed, 0u) << mode;
  }
}

TEST(ShardRecovery, QueuePushFaultIsFatalUnderStrict) {
  const auto trace = zipf_trace(20000, 2000);
  EstimatorOptions opts;
  opts.set("shards", "2");
  opts.set("threads", "2");
  ASSERT_TRUE(faults::arm("sharded.queue_push@hit=100").is_ok());
  auto est = make("shards_sharded", opts);
  EXPECT_THROW(
      {
        for (const Request& r : trace) est->access(r);
        est->finish();
      },
      faults::FaultInjectedError);
  faults::disarm();
}

TEST(ShardRecovery, ReplayJournalIsChargedAgainstTheMemoryBudget) {
  // The per-shard stack budget shrinks by the journal footprint, so a
  // replay-mode run degrades at least as eagerly as a strict run with the
  // same global ceiling.
  const auto trace = zipf_trace(60000, 20000, 0.7);
  EstimatorOptions opts;
  opts.set("max_stack_bytes", "65536");
  opts.set("shards", "2");
  opts.set("threads", "2");
  opts.set("rate", "1.0");
  opts.set("failure_mode", "replay");
  opts.set("journal_records", "1024");  // 16 KiB of the 32 KiB shard share
  auto est = make("shards_sharded", opts);
  run(*est, trace);
  const RunReport report = est->run_report();
  EXPECT_GT(report.degradation_events, 0u);
}

TEST(ShardedEstimator, RejectsZeroShardsOrThreads) {
  for (const char* key : {"shards", "threads"}) {
    EstimatorOptions opts;
    opts.set(key, "0");
    auto est = EstimatorRegistry::instance().create("shards_sharded", opts);
    ASSERT_FALSE(est.is_ok()) << key;
    EXPECT_EQ(est.status().code(), StatusCode::kInvalidArgument) << key;
  }
}

TEST(ShardedEstimator, ShardUnawareBaseModelIsRejectedAtConstruction) {
  // The runner injects shard_count into every per-shard factory call, and
  // models that cannot rescale for sharding don't declare that key — so a
  // shard-unaware base fails fast at construction instead of producing a
  // silently unscaled merge.
  ShardedEstimator::Config cfg;
  cfg.base_model = "lru_stack";
  cfg.shards = 2;
  cfg.threads = 1;
  EXPECT_THROW(ShardedEstimator est(cfg), std::invalid_argument);
}

TEST(ShardedEstimator, StrictWorkerExceptionPropagatesFromFinish) {
  const auto trace = zipf_trace(80000, 5000);
  ShardedEstimator::Config cfg;
  cfg.base_model = "shards";
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.queue_capacity = 256;  // small ring so the producer hits backpressure
  std::atomic<std::uint64_t> seen{0};
  cfg.before_access_hook = [&seen](std::uint32_t shard, const Request&) {
    if (shard == 1 && seen.fetch_add(1) == 100) {
      throw std::runtime_error("shard worker fault injection");
    }
  };
  ShardedEstimator est(cfg);
  for (const Request& r : trace) est.access(r);
  EXPECT_THROW(est.finish(), std::runtime_error);
  // Idempotent after the rethrow; the object destructs without deadlock.
  est.finish();
}

TEST(ShardedEstimator, BestEffortDropsFailedShardAndRescalesSurvivors) {
  const auto trace = zipf_trace(80000, 5000);
  ShardedEstimator::Config cfg;
  cfg.base_model = "shards";
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.queue_capacity = 256;
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  std::atomic<std::uint64_t> seen{0};
  cfg.before_access_hook = [&seen](std::uint32_t shard, const Request&) {
    if (shard == 1 && seen.fetch_add(1) == 100) {
      throw std::runtime_error("shard worker fault injection");
    }
  };
  ShardedEstimator est(cfg);
  for (const Request& r : trace) est.access(r);
  EXPECT_NO_THROW(est.finish());
  EXPECT_EQ(est.shards_failed(), 1u);
  EXPECT_GT(est.dropped_records(), 0u);
  EXPECT_EQ(est.processed(), trace.size());
  const MissRatioCurve curve = est.mrc();
  ASSERT_FALSE(curve.points().empty());
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
  EXPECT_EQ(est.run_report().shards_failed, 1u);
  obs::MetricsRegistry registry;
  est.export_gauges(registry);
  EXPECT_EQ(registry.gauge("sharded.shard1.failed").value(), 1.0);
  EXPECT_EQ(registry.gauge("sharded.shard0.failed").value(), 0.0);
}

TEST(ShardedEstimator, ResumeRejectsShardCountMismatch) {
  EstimatorOptions opts;
  opts.set("shards", "2");
  auto est = make("shards_sharded", opts);
  const auto trace = zipf_trace(2000, 200);
  for (const Request& r : trace) est->access(r);
  std::string blob;
  ASSERT_TRUE(est->save_state(&blob).is_ok());
  EstimatorOptions other;
  other.set("shards", "3");
  auto mismatched = make("shards_sharded", other);
  const Status loaded = mismatched->load_state(blob);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEstimator, ResumeRequiresFreshEstimator) {
  EstimatorOptions opts;
  opts.set("shards", "2");
  auto est = make("shards_sharded", opts);
  const auto trace = zipf_trace(2000, 200);
  for (const Request& r : trace) est->access(r);
  std::string blob;
  ASSERT_TRUE(est->save_state(&blob).is_ok());
  // Loading over an estimator that has already consumed records would
  // silently merge two histories; it must refuse instead.
  const Status loaded = est->load_state(blob);
  ASSERT_FALSE(loaded.is_ok());
  EXPECT_EQ(loaded.code(), StatusCode::kInvalidArgument);
}

TEST(ShardedEstimator, BestEffortResumePreservesDeadShards) {
  // A shard that died before the snapshot stays dead after it: the resumed
  // run keeps bit-bucketing its records and the merge still applies the
  // survivor rescale.
  const auto trace = zipf_trace(80000, 5000);
  const std::size_t cut = 60000;
  ShardedEstimator::Config cfg;
  cfg.base_model = "shards";
  cfg.shards = 4;
  cfg.threads = 2;
  cfg.queue_capacity = 256;
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  std::atomic<std::uint64_t> seen{0};
  cfg.before_access_hook = [&seen](std::uint32_t shard, const Request&) {
    if (shard == 1 && seen.fetch_add(1) == 100) {
      throw std::runtime_error("shard worker fault injection");
    }
  };
  ShardedEstimator first(cfg);
  for (std::size_t i = 0; i < cut; ++i) first.access(trace[i]);
  std::string blob;
  ASSERT_TRUE(first.save_state(&blob).is_ok());
  EXPECT_EQ(first.shards_failed(), 1u);
  ShardedEstimator::Config resume_cfg = cfg;
  resume_cfg.before_access_hook = nullptr;  // no fault on the resumed run
  ShardedEstimator resumed(resume_cfg);
  ASSERT_TRUE(resumed.load_state(blob).is_ok());
  for (std::size_t i = cut; i < trace.size(); ++i) resumed.access(trace[i]);
  EXPECT_NO_THROW(resumed.finish());
  EXPECT_EQ(resumed.shards_failed(), 1u);
  EXPECT_EQ(resumed.processed(), trace.size());
  EXPECT_GT(resumed.dropped_records(), 0u);
  const MissRatioCurve curve = resumed.mrc();
  ASSERT_FALSE(curve.points().empty());
  for (const auto& [size, ratio] : curve.points()) {
    EXPECT_GE(ratio, 0.0);
    EXPECT_LE(ratio, 1.0);
  }
}

TEST(ShardedEstimator, BestEffortWithEveryShardDeadIsARealFailure) {
  ShardedEstimator::Config cfg;
  cfg.base_model = "shards";
  cfg.shards = 2;
  cfg.threads = 1;
  cfg.failure_mode = ShardFailureMode::kBestEffort;
  cfg.before_access_hook = [](std::uint32_t, const Request&) {
    throw std::runtime_error("injected");
  };
  ShardedEstimator est(cfg);
  const auto trace = zipf_trace(1000, 100);
  for (const Request& r : trace) est.access(r);
  EXPECT_EQ(est.shards_failed(), 2u);
  EXPECT_THROW(est.finish(), StatusError);
}

TEST(ShardedEstimator, MemoryBudgetIsEnforcedPerShard) {
  // The global budget is split across shards and enforced from the
  // consuming thread; degradations show up in the aggregated report.
  const auto trace = zipf_trace(60000, 20000, 0.7);
  EstimatorOptions opts;
  opts.set("max_stack_bytes", "32768");
  opts.set("shards", "2");
  opts.set("threads", "2");
  opts.set("rate", "1.0");  // start unsampled so the budget has to bite
  auto est = make("shards_sharded", opts);
  run(*est, trace);
  const RunReport report = est->run_report();
  EXPECT_GT(report.degradation_events, 0u);
  EXPECT_LT(report.final_sampling_rate, report.configured_sampling_rate);
}

TEST(ShardedEstimator, ThreadedAccessorsRequireFinish) {
  EstimatorOptions opts;
  opts.set("shards", "2");
  opts.set("threads", "2");
  auto est = make("shards_sharded", opts);
  EXPECT_THROW(est->mrc(), std::logic_error);
  EXPECT_THROW(est->run_report(), std::logic_error);
  est->finish();
  EXPECT_NO_THROW(est->mrc());
}

TEST(ShardedEstimator, ShardRoutingIsAPureDisjointPartition) {
  EstimatorOptions opts;
  opts.set("shards", "7");
  ShardedEstimator::Config cfg;
  cfg.base_model = "shards";
  cfg.shards = 7;
  ShardedEstimator est(cfg);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const std::uint32_t s = est.shard_of(key);
    ASSERT_LT(s, 7u);
    ASSERT_EQ(s, est.shard_of(key));  // pure function of the key
  }
}

}  // namespace
}  // namespace krr
