#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "trace/zipf.h"
#include "util/prng.h"

namespace krr {
namespace {

TEST(ZipfianDraw, RejectsBadArguments) {
  EXPECT_THROW(ZipfianDraw(0, 0.5), std::invalid_argument);
  EXPECT_THROW(ZipfianDraw(10, -0.1), std::invalid_argument);
}

TEST(ZipfianDraw, StaysInRange) {
  ZipfianDraw draw(100, 0.99);
  Xoshiro256ss rng(1);
  for (int i = 0; i < 100000; ++i) EXPECT_LT(draw.draw(rng), 100u);
}

TEST(ZipfianDraw, RankZeroIsMostPopular) {
  ZipfianDraw draw(1000, 0.99);
  Xoshiro256ss rng(2);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 200000; ++i) ++counts[draw.draw(rng)];
  // Popularity must decrease with rank (with statistical slack).
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Rank-0 frequency should match 1/zeta(n, theta) closely. For n=1000 and
  // theta=0.99, zeta ~ 7.5, so p0 ~ 0.133.
  const double p0 = static_cast<double>(counts[0]) / 200000.0;
  EXPECT_NEAR(p0, 0.133, 0.01);
}

TEST(ZipfianDraw, FrequencyFollowsPowerLaw) {
  // p(r) ~ 1/(r+1)^theta, so log(p(a)/p(b)) ~ theta*log((b+1)/(a+1)).
  ZipfianDraw draw(10000, 1.2);
  Xoshiro256ss rng(3);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 500000; ++i) ++counts[draw.draw(rng)];
  const double ratio = static_cast<double>(counts[0]) / counts[9];
  const double expected = std::pow(10.0, 1.2);  // (9+1)/(0+1)
  EXPECT_NEAR(std::log(ratio), std::log(expected), 0.35);
}

TEST(ZipfianDraw, ThetaNearOneIsHandled) {
  ZipfianDraw draw(100, 1.0);
  EXPECT_NEAR(draw.theta(), 0.99999, 1e-9);
  Xoshiro256ss rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(draw.draw(rng), 100u);
}

TEST(ZipfianGenerator, IsDeterministicAndResettable) {
  ZipfianGenerator gen(1000, 0.8, 42);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 50; ++i) first.push_back(gen.next().key);
  gen.reset();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen.next().key, first[i]);
}

TEST(ZipfianGenerator, ScramblingPreservesSkewButSpreadsKeys) {
  ZipfianGenerator plain(1 << 16, 1.2, 7, /*scrambled=*/false);
  ZipfianGenerator scrambled(1 << 16, 1.2, 7, /*scrambled=*/true);
  std::map<std::uint64_t, int> pc, sc;
  for (int i = 0; i < 100000; ++i) {
    ++pc[plain.next().key];
    ++sc[scrambled.next().key];
  }
  // Same number of distinct keys (roughly), same top-key frequency.
  auto top = [](const std::map<std::uint64_t, int>& m) {
    int best = 0;
    for (const auto& [k, c] : m) best = std::max(best, c);
    return best;
  };
  EXPECT_NEAR(top(pc), top(sc), top(pc) * 0.1);
  // Plain generator's hottest key is rank 0; scrambled one's is not.
  EXPECT_EQ(std::max_element(pc.begin(), pc.end(),
                             [](auto& a, auto& b) { return a.second < b.second; })
                ->first,
            0u);
}

TEST(ZipfianGenerator, AppliesObjectSize) {
  ZipfianGenerator gen(100, 0.5, 1, false, 200);
  EXPECT_EQ(gen.next().size, 200u);
}

TEST(UniformGenerator, CoversRangeUniformly) {
  UniformGenerator gen(10, 5);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[gen.next().key];
  EXPECT_EQ(counts.size(), 10u);
  for (const auto& [k, c] : counts) {
    EXPECT_NEAR(static_cast<double>(c), 10000.0, 500.0) << "key " << k;
  }
}

TEST(UniformGenerator, ResetReplays) {
  UniformGenerator gen(1000, 9);
  const auto a = gen.next().key;
  const auto b = gen.next().key;
  gen.reset();
  EXPECT_EQ(gen.next().key, a);
  EXPECT_EQ(gen.next().key, b);
}

}  // namespace
}  // namespace krr
