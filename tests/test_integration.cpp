// End-to-end integration tests: miniature versions of the paper's headline
// experiments as hard assertions, crossing every layer (generators ->
// simulators -> models -> curves).

#include <gtest/gtest.h>

#include <memory>

#include "krr.h"
#include "trace/workload_factory.h"

namespace krr {
namespace {

// A scaled-down Table 5.1: for each workload family representative and
// every K, KRR's MAE against simulation stays within a hard budget.
TEST(Integration, MiniTable51AllFamiliesAllK) {
  struct Entry {
    std::string spec;
    std::uint64_t footprint;
  };
  const std::vector<Entry> entries = {
      {"msr:src1", 8000}, {"ycsb_c:0.99", 10000}, {"twitter:cluster34.1", 8000}};
  for (const Entry& e : entries) {
    WorkloadFactoryOptions wf;
    wf.footprint = e.footprint;
    wf.uniform_size = 1;
    wf.seed = 5;
    auto gen = make_workload(e.spec, wf);
    const auto trace = materialize(*gen, 80000);
    const auto sizes = capacity_grid_objects(trace, 16);
    for (std::uint32_t k : {1, 4, 16}) {
      const MissRatioCurve actual = sweep_klru(trace, sizes, k, true, 60 + k);
      KrrProfilerConfig cfg;
      cfg.k_sample = k;
      KrrProfiler profiler(cfg);
      for (const Request& r : trace) profiler.access(r);
      EXPECT_LT(profiler.mrc().mae(actual, sizes), 0.02)
          << e.spec << " K=" << k;
    }
  }
}

// Fig 5.2's consequence: on a Type A trace, the exact LRU curve is a bad
// model of K-LRU at small K, while KRR is a good one.
TEST(Integration, LruModelsMispredictTypeATracesKrrDoesNot) {
  WorkloadFactoryOptions wf;
  wf.footprint = 8000;
  wf.seed = 9;
  auto gen = make_workload("ycsb_e:1.5", wf);
  const auto trace = materialize(*gen, 100000);
  const auto sizes = capacity_grid_objects(trace, 16);
  const MissRatioCurve truth = sweep_klru(trace, sizes, 2, true, 3);

  LruStackProfiler lru;
  AetProfiler aet;
  KrrProfilerConfig cfg;
  cfg.k_sample = 2;
  KrrProfiler krr_model(cfg);
  for (const Request& r : trace) {
    lru.access(r);
    aet.access(r);
    krr_model.access(r);
  }
  const double mae_krr = krr_model.mrc().mae(truth, sizes);
  const double mae_lru = lru.mrc().mae(truth, sizes);
  const double mae_aet = aet.mrc(sizes).mae(truth, sizes);
  EXPECT_LT(mae_krr, 0.03);
  EXPECT_GT(mae_lru, 3.0 * mae_krr);
  EXPECT_GT(mae_aet, 3.0 * mae_krr);
}

// Fig 5.5 in miniature: KRR+spatial tracks the Redis-style cache.
TEST(Integration, KrrTracksRedisStyleCache) {
  WorkloadFactoryOptions wf;
  wf.footprint = 6000;
  wf.uniform_size = 1;
  wf.seed = 13;
  auto gen = make_workload("msr:src2", wf);
  const auto trace = materialize(*gen, 80000);
  const auto sizes = capacity_grid_objects(trace, 12);
  RedisLruConfig redis_cfg;
  redis_cfg.maxmemory_samples = 5;
  redis_cfg.seed = 7;
  const MissRatioCurve redis = sweep_redis(trace, sizes, redis_cfg);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  EXPECT_LT(profiler.mrc().mae(redis, sizes), 0.03);
}

// The full online path: factory -> spatial sampling -> var-KRR -> curve,
// against a byte-capacity ground truth.
TEST(Integration, OnlineVarKrrPipeline) {
  WorkloadFactoryOptions wf;
  wf.footprint = 8000;
  wf.seed = 17;
  auto gen = make_workload("twitter:cluster52.7", wf);
  const auto trace = materialize(*gen, 120000);
  const auto sizes = capacity_grid_bytes(trace, 12);
  const MissRatioCurve truth = sweep_klru(trace, sizes, 5, true, 21);
  KrrProfilerConfig cfg;
  cfg.k_sample = 5;
  cfg.byte_granularity = true;
  cfg.sampling_rate = adaptive_sampling_rate(0.001, count_distinct(trace), 4096);
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  EXPECT_LT(profiler.mrc().mae(truth, sizes), 0.04);
}

// Trace round-trip does not change any model's answer.
TEST(Integration, TraceSerializationPreservesResults) {
  WorkloadFactoryOptions wf;
  wf.footprint = 2000;
  wf.seed = 23;
  auto gen = make_workload("zipf:1.2", wf);
  const auto trace = materialize(*gen, 30000);
  const std::string path = testing::TempDir() + "/krr_integration_trace.bin";
  save_trace(path, trace);
  const auto loaded = load_trace(path);
  std::remove(path.c_str());

  auto profile = [](const std::vector<Request>& t) {
    KrrProfilerConfig cfg;
    cfg.k_sample = 5;
    cfg.seed = 31;
    KrrProfiler p(cfg);
    for (const Request& r : t) p.access(r);
    return p.mrc();
  };
  const MissRatioCurve a = profile(trace);
  const MissRatioCurve b = profile(loaded);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.points()[i].size, b.points()[i].size);
    EXPECT_DOUBLE_EQ(a.points()[i].miss_ratio, b.points()[i].miss_ratio);
  }
}

}  // namespace
}  // namespace krr
