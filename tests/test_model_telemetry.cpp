// Registry-wide telemetry conformance: every model that declares the
// `metrics` capability must publish real model.* gauges through
// attach_metrics/refresh_metrics_gauges — non-trivial sample counts, a
// meaningful depth or histogram size, a sane sampling rate. This is what
// makes the capability flag honest: `krr_cli models` advertises it, so a
// model that flies blind must not set it.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "trace/request.h"
#include "trace/workload_factory.h"

namespace krr {
namespace {

std::vector<Request> telemetry_trace() {
  WorkloadFactoryOptions wf;
  wf.seed = 11;
  wf.footprint = 400;
  auto gen = try_make_workload("zipf:0.9", wf);
  EXPECT_TRUE(gen.is_ok());
  return materialize(**gen, 3000);
}

std::vector<std::string> metrics_capable_models() {
  std::vector<std::string> names;
  for (const auto& info : EstimatorRegistry::instance().list()) {
    if (info.caps.metrics) names.push_back(info.name);
  }
  return names;
}

class ModelTelemetryConformance
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelTelemetryConformance, PublishesRealModelGauges) {
  auto created = EstimatorRegistry::instance().create(GetParam(), {});
  ASSERT_TRUE(created.is_ok()) << created.status().message();
  std::unique_ptr<MrcEstimator> est = std::move(*created);

  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  est->attach_metrics(&metrics);

  for (const Request& r : telemetry_trace()) est->access(r);
  est->finish();
  est->refresh_metrics_gauges();

  // Samples: the model saw 3000 references; whatever its sampling scheme,
  // a non-zero number must have reached its state.
  EXPECT_GT(metrics.model.samples->value(), 0.0) << GetParam();
  // Depth or histogram size: the model must expose *some* view of how much
  // state it holds. (Which one is model-family-specific: stack models have
  // depth, reuse-time models have bins, several have both.)
  EXPECT_TRUE(metrics.model.depth->value() > 0.0 ||
              metrics.model.histogram_bins->value() > 0.0)
      << GetParam() << ": depth=" << metrics.model.depth->value()
      << " bins=" << metrics.model.histogram_bins->value();
  // Sampling rate is a probability.
  EXPECT_GT(metrics.model.sampling_rate->value(), 0.0) << GetParam();
  EXPECT_LE(metrics.model.sampling_rate->value(), 1.0) << GetParam();
  // No degradation can have happened without a budget.
  EXPECT_DOUBLE_EQ(metrics.model.degradations->value(), 0.0) << GetParam();
}

TEST_P(ModelTelemetryConformance, GaugeSnapshotMatchesPublishedGauges) {
  auto created = EstimatorRegistry::instance().create(GetParam(), {});
  ASSERT_TRUE(created.is_ok()) << created.status().message();
  std::unique_ptr<MrcEstimator> est = std::move(*created);

  obs::MetricsRegistry registry;
  obs::PipelineMetrics metrics(registry);
  est->attach_metrics(&metrics);
  for (const Request& r : telemetry_trace()) est->access(r);
  est->finish();
  est->refresh_metrics_gauges();

  const ModelGaugeSnapshot g = est->model_gauges();
  EXPECT_DOUBLE_EQ(metrics.model.depth->value(), g.depth) << GetParam();
  EXPECT_DOUBLE_EQ(metrics.model.resident_bytes->value(), g.resident_bytes)
      << GetParam();
  EXPECT_DOUBLE_EQ(metrics.model.sampling_rate->value(), g.sampling_rate)
      << GetParam();
  EXPECT_DOUBLE_EQ(metrics.model.samples->value(), g.samples) << GetParam();
  EXPECT_DOUBLE_EQ(metrics.model.histogram_bins->value(), g.histogram_bins)
      << GetParam();
}

TEST_P(ModelTelemetryConformance, RefreshWithoutAttachIsANoOp) {
  auto created = EstimatorRegistry::instance().create(GetParam(), {});
  ASSERT_TRUE(created.is_ok()) << created.status().message();
  std::unique_ptr<MrcEstimator> est = std::move(*created);
  for (const Request& r : telemetry_trace()) est->access(r);
  est->finish();
  est->refresh_metrics_gauges();  // must not crash with no sink attached
}

TEST_P(ModelTelemetryConformance, AttachTracerIsAcceptedByEveryModel) {
  // attach_tracer is part of the base contract: models without span
  // instrumentation ignore it, and that must be safe on every model.
  auto created = EstimatorRegistry::instance().create(GetParam(), {});
  ASSERT_TRUE(created.is_ok()) << created.status().message();
  std::unique_ptr<MrcEstimator> est = std::move(*created);
  obs::Tracer tracer;
  est->attach_tracer(&tracer);
  for (const Request& r : telemetry_trace()) est->access(r);
  est->finish();
  (void)est->mrc({});
}

INSTANTIATE_TEST_SUITE_P(
    AllMetricsCapableModels, ModelTelemetryConformance,
    ::testing::ValuesIn(metrics_capable_models()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-' || c == '.') c = '_';
      }
      return name;
    });

TEST(ModelTelemetry, AtLeastTwelveModelsDeclareMetrics) {
  // The capability sweep: the zoo has 14 models; registry-wide telemetry
  // means (nearly) all of them report, not just the krr family.
  EXPECT_GE(metrics_capable_models().size(), 12u);
}

}  // namespace
}  // namespace krr
