#include <gtest/gtest.h>

#include <set>

#include "trace/workload_factory.h"

namespace krr {
namespace {

TEST(WorkloadFactory, BuildsEveryListedSpec) {
  WorkloadFactoryOptions opts;
  opts.footprint = 2000;
  for (const std::string& spec : known_workload_specs()) {
    std::string concrete = spec;
    // Replace the parameter placeholders with real values.
    if (auto pos = concrete.find("<alpha>"); pos != std::string::npos) {
      concrete = concrete.substr(0, pos) + "0.99";
    }
    if (auto pos = concrete.find("<theta>"); pos != std::string::npos) {
      concrete = concrete.substr(0, pos) + "0.9";
    }
    auto gen = make_workload(concrete, opts);
    ASSERT_NE(gen, nullptr) << concrete;
    for (int i = 0; i < 100; ++i) gen->next();
    EXPECT_FALSE(gen->name().empty()) << concrete;
  }
}

TEST(WorkloadFactory, RejectsUnknownSpecs) {
  EXPECT_THROW(make_workload("nope"), std::invalid_argument);
  EXPECT_THROW(make_workload("msr:doesnotexist"), std::out_of_range);
  EXPECT_THROW(make_workload("twitter:cluster99"), std::out_of_range);
  EXPECT_THROW(make_workload("ycsb_c:abc"), std::invalid_argument);
}

TEST(WorkloadFactory, FootprintOverrideApplies) {
  WorkloadFactoryOptions opts;
  opts.footprint = 123;
  auto gen = make_workload("uniform", opts);
  std::set<std::uint64_t> keys;
  for (int i = 0; i < 20000; ++i) {
    const auto k = gen->next().key;
    EXPECT_LT(k, 123u);
    keys.insert(k);
  }
  EXPECT_EQ(keys.size(), 123u);
}

TEST(WorkloadFactory, UniformSizeOverrideApplies) {
  WorkloadFactoryOptions opts;
  opts.footprint = 100;
  opts.uniform_size = 777;
  auto gen = make_workload("msr:src1", opts);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(gen->next().size, 777u);
}

TEST(WorkloadFactory, SeedControlsTheStream) {
  WorkloadFactoryOptions a, b;
  a.seed = 1;
  b.seed = 2;
  a.footprint = b.footprint = 1000;
  auto ga = make_workload("zipf:0.9", a);
  auto gb = make_workload("zipf:0.9", b);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (ga->next().key == gb->next().key) ++equal;
  }
  EXPECT_LT(equal, 60);  // zipf repeats hot keys; streams must still differ
  // Same seed: identical streams.
  auto g1 = make_workload("zipf:0.9", a);
  auto g2 = make_workload("zipf:0.9", a);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(g1->next().key, g2->next().key);
}

TEST(WorkloadFactory, MasterSpecHonorsFootprint) {
  WorkloadFactoryOptions opts;
  opts.footprint = 28000;  // scale 0.01 of the built-in total
  auto gen = make_workload("msr:master", opts);
  for (int i = 0; i < 1000; ++i) gen->next();
  EXPECT_EQ(gen->name(), "msr_master");
}

}  // namespace
}  // namespace krr
