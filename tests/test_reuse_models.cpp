// Tests for the reuse-time model family (shared histogram, StatStack,
// HOTL) and the MIMIR bucketed ghost list.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <unordered_map>

#include "baselines/aet.h"
#include "baselines/hotl.h"
#include "baselines/lru_stack.h"
#include "baselines/mimir.h"
#include "baselines/statstack.h"
#include "sim/sweep.h"
#include "trace/generator.h"
#include "trace/msr.h"
#include "trace/zipf.h"
#include "util/reuse_histogram.h"

namespace krr {
namespace {

Request get(std::uint64_t key) { return Request{key, 1, Op::kGet}; }

// ---------------- ReuseTimeHistogram ----------------

TEST(ReuseTimeHistogram, ValidatesSubBuckets) {
  EXPECT_THROW(ReuseTimeHistogram(0), std::invalid_argument);
  EXPECT_THROW(ReuseTimeHistogram(100), std::invalid_argument);
}

TEST(ReuseTimeHistogram, SmallValuesAreExact) {
  ReuseTimeHistogram h(256);
  for (std::uint64_t rt = 1; rt < 512; ++rt) {
    EXPECT_EQ(h.bin_upper_bound(h.bin_index(rt)), rt) << rt;
  }
}

TEST(ReuseTimeHistogram, BinsAreContiguousAndMonotone) {
  ReuseTimeHistogram h(64);
  std::size_t prev = h.bin_index(1);
  for (std::uint64_t rt = 2; rt < 300000; rt = rt * 9 / 8 + 1) {
    const std::size_t idx = h.bin_index(rt);
    EXPECT_GE(idx, prev);
    EXPECT_GE(h.bin_upper_bound(idx), rt);
    prev = idx;
  }
}

TEST(ReuseTimeHistogram, BinRelativeErrorIsBounded) {
  ReuseTimeHistogram h(256);
  for (std::uint64_t rt = 512; rt < 10000000; rt = rt * 5 / 4) {
    const std::uint64_t ub = h.bin_upper_bound(h.bin_index(rt));
    EXPECT_LE(static_cast<double>(ub - rt) / static_cast<double>(rt), 1.0 / 256);
  }
}

TEST(ReuseTimeHistogram, TailWeightCountsStrictlyGreater) {
  ReuseTimeHistogram h(64);
  h.record(5, 2.0);
  h.record(10, 3.0);
  EXPECT_DOUBLE_EQ(h.tail_weight(4), 5.0);
  EXPECT_DOUBLE_EQ(h.tail_weight(5), 3.0);
  EXPECT_DOUBLE_EQ(h.tail_weight(10), 0.0);
  EXPECT_THROW(h.record(0), std::invalid_argument);
}

TEST(ReuseTimeCollector, MeasuresReuseTimes) {
  ReuseTimeCollector c;
  EXPECT_EQ(c.access(1), 0u);
  EXPECT_EQ(c.access(2), 0u);
  EXPECT_EQ(c.access(1), 2u);
  EXPECT_EQ(c.access(1), 1u);
  EXPECT_DOUBLE_EQ(c.cold_count(), 2.0);
  EXPECT_EQ(c.first_access_times().at(1), 1u);
  EXPECT_EQ(c.last_access_times().at(1), 4u);
}

// ---------------- StatStack ----------------

TEST(StatStack, ExpectedDistanceIsMonotoneInReuseTime) {
  StatStackProfiler ss;
  ZipfianGenerator gen(2000, 0.9, 3, true);
  for (int i = 0; i < 50000; ++i) ss.access(gen.next());
  double prev = 0.0;
  for (std::uint64_t rt : {1ULL, 2ULL, 10ULL, 100ULL, 1000ULL, 10000ULL}) {
    const double sd = ss.expected_stack_distance(rt);
    EXPECT_GE(sd, prev);
    EXPECT_LE(sd, static_cast<double>(rt));  // never more distinct than refs
    prev = sd;
  }
}

TEST(StatStack, ApproximatesExactLruOnIrmWorkload) {
  // IRM traces satisfy StatStack's independence assumption.
  ZipfianGenerator gen(4000, 0.9, 5, true);
  const auto trace = materialize(gen, 150000);
  StatStackProfiler ss;
  LruStackProfiler exact;
  for (const Request& r : trace) {
    ss.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(ss.mrc().mae(exact.mrc(), sizes), 0.02);
}

TEST(StatStack, UniformIrmDistanceMatchesClosedForm) {
  // For uniform IRM over M objects, a reuse time r implies an expected
  // distance of about M(1 - (1 - 1/M)^(r-1)) + 1 distinct objects.
  constexpr std::uint64_t kM = 512;
  UniformGenerator gen(kM, 7);
  StatStackProfiler ss;
  for (int i = 0; i < 300000; ++i) ss.access(gen.next());
  for (std::uint64_t rt : {8ULL, 64ULL, 512ULL}) {
    const double expected =
        static_cast<double>(kM) *
            (1.0 - std::pow(1.0 - 1.0 / static_cast<double>(kM),
                            static_cast<double>(rt - 1))) +
        1.0;
    EXPECT_NEAR(ss.expected_stack_distance(rt), expected, expected * 0.08) << rt;
  }
}

TEST(StatStack, AgreesWithAetOnAnyTrace) {
  // AET and StatStack are two derivations of the same reuse-time -> stack-
  // distance transform (AET inverts integral_0^T P = c; StatStack pushes
  // each reuse through sd(r) ~ integral_0^{r-1} P), so on identical binned
  // input their curves must coincide up to bin granularity.
  MsrGenerator gen(msr_profile("web"), 21, 5000, 1);
  const auto trace = materialize(gen, 80000);
  AetProfiler aet;
  StatStackProfiler ss;
  for (const Request& r : trace) {
    aet.access(r);
    ss.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(aet.mrc(sizes).mae(ss.mrc(), sizes), 0.005);
}

// ---------------- HOTL ----------------

TEST(Hotl, FootprintMatchesBruteForceOnSmallTrace) {
  // Brute force: average distinct count over all windows of length w.
  ZipfianGenerator gen(40, 0.8, 9);
  const auto trace = materialize(gen, 400);
  HotlProfiler hotl;
  for (const Request& r : trace) hotl.access(r);
  for (std::uint64_t w : {1ULL, 3ULL, 10ULL, 50ULL, 200ULL, 400ULL}) {
    double total = 0.0;
    const std::size_t windows = trace.size() - w + 1;
    for (std::size_t s = 0; s < windows; ++s) {
      std::set<std::uint64_t> distinct;
      for (std::size_t i = s; i < s + w; ++i) distinct.insert(trace[i].key);
      total += static_cast<double>(distinct.size());
    }
    const double brute = total / static_cast<double>(windows);
    // The log-binned reuse histogram coarsens large reuse times slightly.
    EXPECT_NEAR(hotl.footprint(w), brute, std::max(0.02 * brute, 0.5)) << "w=" << w;
  }
}

TEST(Hotl, FootprintIsMonotoneAndBounded) {
  ZipfianGenerator gen(1000, 1.0, 11, true);
  HotlProfiler hotl;
  for (int i = 0; i < 50000; ++i) hotl.access(gen.next());
  double prev = 0.0;
  for (std::uint64_t w = 1; w <= 50000; w *= 4) {
    const double fp = hotl.footprint(w);
    EXPECT_GE(fp + 1e-9, prev);
    EXPECT_LE(fp, static_cast<double>(hotl.distinct_objects()));
    prev = fp;
  }
  EXPECT_DOUBLE_EQ(hotl.footprint(50000),
                   static_cast<double>(hotl.distinct_objects()));
}

TEST(Hotl, ApproximatesExactLruOnIrmWorkload) {
  ZipfianGenerator gen(4000, 0.9, 13, true);
  const auto trace = materialize(gen, 150000);
  HotlProfiler hotl;
  LruStackProfiler exact;
  for (const Request& r : trace) {
    hotl.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(hotl.mrc(128).mae(exact.mrc(), sizes), 0.02);
}

// ---------------- MIMIR ----------------

TEST(Mimir, ValidatesBucketCount) {
  EXPECT_THROW(MimirProfiler(1), std::invalid_argument);
}

TEST(Mimir, ColdReferencesAreInfinite) {
  MimirProfiler mimir(8);
  for (std::uint64_t k = 0; k < 100; ++k) mimir.access(get(k));
  EXPECT_DOUBLE_EQ(mimir.histogram().infinite_weight(), 100.0);
  EXPECT_EQ(mimir.tracked_objects(), 100u);
}

TEST(Mimir, BucketCountStaysBounded) {
  MimirProfiler mimir(32);
  ZipfianGenerator gen(5000, 0.8, 15, true);
  for (int i = 0; i < 100000; ++i) {
    mimir.access(gen.next());
    ASSERT_LE(mimir.bucket_count(), 32u);
  }
}

TEST(Mimir, ApproximatesExactLruWith128Buckets) {
  // The SoCC '14 paper's headline configuration.
  MsrGenerator gen(msr_profile("usr"), 17, 6000, 1);
  const auto trace = materialize(gen, 150000);
  MimirProfiler mimir(128);
  LruStackProfiler exact;
  for (const Request& r : trace) {
    mimir.access(r);
    exact.access(r);
  }
  const auto sizes = capacity_grid_objects(trace, 20);
  EXPECT_LT(mimir.mrc().mae(exact.mrc(), sizes), 0.03);
}

TEST(Mimir, MoreBucketsAreMoreAccurate) {
  ZipfianGenerator gen(3000, 0.9, 19, true);
  const auto trace = materialize(gen, 100000);
  LruStackProfiler exact;
  for (const Request& r : trace) exact.access(r);
  const auto sizes = capacity_grid_objects(trace, 20);
  auto mae_for = [&](std::uint32_t buckets) {
    MimirProfiler mimir(buckets);
    for (const Request& r : trace) mimir.access(r);
    return mimir.mrc().mae(exact.mrc(), sizes);
  };
  EXPECT_LT(mae_for(128), mae_for(4) + 0.005);
}

}  // namespace
}  // namespace krr
