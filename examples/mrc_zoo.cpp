// MRC model zoo: run every estimator registered in EstimatorRegistry on one
// workload and print their curves side by side — a quick way to see which
// family of model fits which policy. Adding a model to the registry adds it
// to this table with no changes here.
//
//   ./build/examples/mrc_zoo [--workload=msr:web] [--requests=N] [--k=5]
//
// Workload specs are the factory grammar (run `krr_cli workloads`).
// reference_oracle models (O(M) per access) are skipped at zoo scale.

#include <cstdio>
#include <iostream>
#include <map>
#include <memory>

#include "krr.h"

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const std::string spec = opts.get_string("workload", "msr:web");
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 200000));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));

  krr::WorkloadFactoryOptions wf;
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 15000));
  wf.uniform_size = 1;
  auto gen = krr::make_workload(spec, wf);
  const auto trace = krr::materialize(*gen, requests);
  const auto sizes = krr::capacity_grid_objects(trace, 8);
  std::printf("workload %s: %zu requests, %zu objects; K-LRU sampling size %u\n\n",
              gen->name().c_str(), trace.size(), krr::count_distinct(trace), k);

  // Ground truth: what a Redis-style K-LRU cache actually does.
  const krr::MissRatioCurve klru = krr::sweep_klru(trace, sizes, k, true, 3);

  // Historic knob choices, expressed as registry options.
  std::map<std::string, krr::EstimatorOptions> overrides;
  overrides["shards"].set("rate", "0.1");
  overrides["mimir"].set("buckets", "128");
  overrides["counter_stacks"].set(
      "interval", std::to_string(std::max<std::uint64_t>(100, requests / 400)));

  // Every non-oracle registered model, all fed in a single sweep.
  auto& registry = krr::EstimatorRegistry::instance();
  struct Row {
    std::string name;
    std::unique_ptr<krr::MrcEstimator> est;
    krr::MissRatioCurve curve;
  };
  std::vector<Row> rows;
  for (const krr::EstimatorInfo& info : registry.list()) {
    if (info.caps.reference_oracle) continue;
    krr::EstimatorOptions options;
    options.set("k", std::to_string(k));
    if (const auto it = overrides.find(info.name); it != overrides.end()) {
      options.merge(it->second);
    }
    auto est = registry.create(info.name, options);
    if (!est.is_ok()) {
      std::fprintf(stderr, "%s: %s\n", info.name.c_str(),
                   est.status().message().c_str());
      return 1;
    }
    rows.push_back(Row{info.name, std::move(*est), {}});
  }
  for (const krr::Request& r : trace) {
    for (Row& row : rows) row.est->access(r);
  }
  for (Row& row : rows) {
    row.est->finish();
    row.curve = row.est->mrc(sizes);
  }

  std::vector<std::string> header{"model"};
  for (double s : sizes) header.push_back(krr::format_double(s, 4));
  krr::Table table(header);
  {
    std::vector<std::string> cells{"simulated_KLRU"};
    for (double s : sizes) cells.push_back(krr::format_double(klru.eval(s), 3));
    table.add_row(std::move(cells));
  }
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (double s : sizes) cells.push_back(krr::format_double(row.curve.eval(s), 3));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::printf("\nMAE vs the simulated K-LRU cache (what an operator of a\n"
              "Redis-style cache actually needs to predict):\n");
  krr::Table mae({"model", "policy", "mae_vs_klru"});
  for (const Row& row : rows) {
    mae.add(row.name, row.est->info().policy, row.curve.mae(klru, sizes));
  }
  mae.print(std::cout);
  std::printf("\nOnly the krr family targets the K-LRU policy; the LRU-family\n"
              "models agree with each other but miss the sampling effect\n"
              "(Fig. 5.2).\n");
  return 0;
}
