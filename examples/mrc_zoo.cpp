// MRC model zoo: run every miss-ratio-curve technique in the library on one
// workload and print their curves side by side — a quick way to see which
// family of model fits which policy.
//
//   ./build/examples/mrc_zoo [--workload=msr:web] [--requests=N] [--k=5]
//
// Workload specs are the factory grammar (run `krr_cli workloads`).

#include <cstdio>
#include <iostream>

#include "krr.h"

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const std::string spec = opts.get_string("workload", "msr:web");
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 200000));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));

  krr::WorkloadFactoryOptions wf;
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 15000));
  wf.uniform_size = 1;
  auto gen = krr::make_workload(spec, wf);
  const auto trace = krr::materialize(*gen, requests);
  const auto sizes = krr::capacity_grid_objects(trace, 8);
  std::printf("workload %s: %zu requests, %zu objects; K-LRU sampling size %u\n\n",
              gen->name().c_str(), trace.size(), krr::count_distinct(trace), k);

  // Ground truths.
  const krr::MissRatioCurve klru = krr::sweep_klru(trace, sizes, k, true, 3);
  krr::LruStackProfiler lru_exact;

  // One-pass models, all fed in a single sweep over the trace.
  krr::KrrProfilerConfig krr_cfg;
  krr_cfg.k_sample = k;
  krr::KrrProfiler krr_model(krr_cfg);
  krr::ShardsProfiler shards(0.1);
  krr::AetProfiler aet;
  krr::StatStackProfiler statstack;
  krr::HotlProfiler hotl;
  krr::MimirProfiler mimir(128);
  krr::CounterStacksProfiler counter_stacks(
      std::max<std::uint64_t>(100, requests / 400));
  for (const krr::Request& r : trace) {
    lru_exact.access(r);
    krr_model.access(r);
    shards.access(r);
    aet.access(r);
    statstack.access(r);
    hotl.access(r);
    mimir.access(r);
    counter_stacks.access(r);
  }

  struct Row {
    const char* name;
    krr::MissRatioCurve curve;
  };
  const std::vector<Row> rows = {
      {"simulated_KLRU", klru},
      {"KRR (models K-LRU)", krr_model.mrc()},
      {"exact_LRU", lru_exact.mrc()},
      {"SHARDS_R0.1", shards.mrc()},
      {"AET", aet.mrc(sizes)},
      {"StatStack", statstack.mrc()},
      {"HOTL", hotl.mrc(128)},
      {"MIMIR_128", mimir.mrc()},
      {"CounterStacks", counter_stacks.mrc()},
  };

  std::vector<std::string> header{"model"};
  for (double s : sizes) header.push_back(krr::format_double(s, 4));
  krr::Table table(header);
  for (const Row& row : rows) {
    std::vector<std::string> cells{row.name};
    for (double s : sizes) cells.push_back(krr::format_double(row.curve.eval(s), 3));
    table.add_row(std::move(cells));
  }
  table.print(std::cout);

  std::printf("\nMAE vs the simulated K-LRU cache (what an operator of a\n"
              "Redis-style cache actually needs to predict):\n");
  krr::Table mae({"model", "mae_vs_klru"});
  for (const Row& row : rows) {
    if (row.name == rows.front().name) continue;
    mae.add(row.name, row.curve.mae(klru, sizes));
  }
  mae.print(std::cout);
  std::printf("\nOnly KRR targets the K-LRU policy; the LRU-family models\n"
              "agree with each other but miss the sampling effect (Fig. 5.2).\n");
  return 0;
}
