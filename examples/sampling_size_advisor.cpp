// Sampling-size advisor: the DLRU-style use case (Wang et al., MEMSYS '20)
// the paper motivates — because K-LRU caches can reconfigure K online, an
// operator wants to know, per workload, whether K matters at all (Type A vs
// Type B, Fig. 5.2) and what the smallest adequate K is. KRR answers with
// one cheap pass per K instead of one simulation per (K, cache size) pair.
//
//   ./build/examples/sampling_size_advisor [--workload=msr_web|msr_usr|ycsb_e]
//                                          [--cache_fraction=0.3]

#include <cstdio>
#include <iostream>
#include <memory>

#include "krr.h"

namespace {

std::unique_ptr<krr::TraceGenerator> make_workload(const std::string& name) {
  if (name.rfind("msr_", 0) == 0) {
    return std::make_unique<krr::MsrGenerator>(krr::msr_profile(name.substr(4)),
                                               /*seed=*/1, 15000, 1);
  }
  if (name == "ycsb_e") {
    return std::make_unique<krr::YcsbWorkloadE>(8000, 1.5, /*seed=*/1);
  }
  if (name == "ycsb_c") {
    return std::make_unique<krr::YcsbWorkloadC>(20000, 0.99, /*seed=*/1);
  }
  throw std::invalid_argument("unknown workload: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const std::string name = opts.get_string("workload", "msr_web");
  const double fraction = opts.get_double("cache_fraction", 0.3);
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 300000));

  auto gen = make_workload(name);
  const auto trace = krr::materialize(*gen, requests);
  const auto wss = static_cast<double>(krr::count_distinct(trace));
  const double cache_size = fraction * wss;
  std::printf("workload %s: %zu requests, %.0f objects; cache = %.0f objects\n\n",
              gen->name().c_str(), trace.size(), wss, cache_size);

  // One KRR pass per K; the K=32 curve stands in for exact LRU.
  const std::vector<std::uint32_t> ks = {1, 2, 4, 8, 16, 32};
  std::vector<krr::MissRatioCurve> curves;
  for (std::uint32_t k : ks) {
    krr::KrrProfilerConfig cfg;
    cfg.k_sample = k;
    krr::KrrProfiler profiler(cfg);
    for (const krr::Request& r : trace) profiler.access(r);
    curves.push_back(profiler.mrc());
  }

  krr::Table table({"K", "predicted_miss_ratio"});
  for (std::size_t i = 0; i < ks.size(); ++i) {
    table.add(ks[i], curves[i].eval(cache_size));
  }
  table.print(std::cout);

  const auto sizes = krr::evenly_spaced_sizes(wss, 16);
  const double spread = curves.front().max_error(curves.back(), sizes);
  std::printf("\nmax spread between K=1 and K=32 curves: %.4f\n", spread);
  // Same Type A threshold as bench_fig5_2_type_a_b.
  if (spread < 0.05) {
    std::printf("=> Type B workload: K barely matters. Use a small K (1-2)\n"
                "   to minimize eviction sampling cost.\n");
  } else {
    // Smallest K whose curve is within 0.01 of the K=32 (near-LRU) curve
    // at the operating point.
    const double lru_like = curves.back().eval(cache_size);
    std::uint32_t best_k = 32;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      if (curves[i].eval(cache_size) - lru_like <= 0.01) {
        best_k = ks[i];
        break;
      }
    }
    std::printf("=> Type A workload: K moves the miss ratio. Smallest K within\n"
                "   0.01 of the near-LRU curve at this cache size: K = %u\n",
                best_k);
  }
  return 0;
}
