// Capacity planner: the LAMA/pRedis-style use case the paper motivates —
// given a workload and a target miss ratio, how much cache memory does a
// Redis-style K-LRU cache need? One KRR pass per K answers this for every
// cache size at once, where simulation would need one run per candidate.
//
//   ./build/examples/capacity_planner [--profile=cluster26.0] [--target=0.2]
//                                     [--requests=N] [--keys=M]

#include <cstdio>
#include <iostream>

#include "krr.h"

namespace {

// Smallest cache size whose predicted miss ratio meets the target.
double required_size(const krr::MissRatioCurve& mrc, double target) {
  for (const auto& p : mrc.points()) {
    if (p.miss_ratio <= target) return p.size;
  }
  return -1.0;  // unattainable within the observed working set
}

}  // namespace

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const std::string profile = opts.get_string("profile", "cluster26.0");
  const double target = opts.get_double("target", 0.2);
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 300000));
  const auto keys = static_cast<std::uint64_t>(opts.get_int("keys", 20000));

  krr::TwitterGenerator gen(krr::twitter_profile(profile), /*seed=*/1, keys);
  const auto trace = krr::materialize(gen, requests);
  const std::uint64_t wss = krr::working_set_bytes(trace);
  std::printf("workload %s: %zu requests, %zu objects, %.1f MiB working set\n",
              gen.name().c_str(), trace.size(), krr::count_distinct(trace),
              static_cast<double>(wss) / (1024.0 * 1024.0));
  std::printf("target miss ratio: %.3f\n\n", target);

  krr::Table table({"K", "required_MiB", "vs_K1_percent"});
  double k1_size = 0.0;
  for (std::uint32_t k : {1, 2, 5, 10, 32}) {
    krr::KrrProfilerConfig cfg;
    cfg.k_sample = k;
    cfg.byte_granularity = true;  // plan in bytes: object sizes vary
    krr::KrrProfiler profiler(cfg);
    for (const krr::Request& r : trace) profiler.access(r);
    const double size = required_size(profiler.mrc(), target);
    if (size < 0) {
      table.add(k, "unattainable", "-");
      continue;
    }
    if (k == 1) k1_size = size;
    const double mib = size / (1024.0 * 1024.0);
    table.add(k, mib,
              k1_size > 0 ? krr::format_double(100.0 * size / k1_size, 4)
                          : std::string("-"));
  }
  table.print(std::cout);
  std::printf(
      "\nLarger eviction sampling sizes K approximate LRU more closely; whether\n"
      "that saves or costs memory depends on the workload (Fig. 5.2): LRU wins\n"
      "on recency-driven traces but loses to random-like eviction on loop- or\n"
      "scan-dominated ones. Either way K trades miss ratio against eviction\n"
      "cost (Fig. 5.4) — and the table above prices that trade-off in MiB.\n");
  return 0;
}
