// Quickstart: predict the miss ratio curve of a Redis-style K-LRU cache
// (sampling size K = 5) for a skewed key-value workload, in one pass,
// and compare it against brute-force simulation.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--requests=N] [--keys=M] [--k=K]

#include <cstdio>
#include <iostream>
#include <vector>

#include "krr.h"

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 200000));
  const auto keys = static_cast<std::uint64_t>(opts.get_int("keys", 20000));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));

  // 1. A skewed workload (YCSB workload C shape).
  krr::YcsbWorkloadC gen(keys, /*alpha=*/0.99, /*seed=*/1);
  const std::vector<krr::Request> trace = krr::materialize(gen, requests);

  // 2. One-pass KRR prediction of the K-LRU MRC.
  krr::KrrProfilerConfig cfg;
  cfg.k_sample = k;
  krr::KrrProfiler profiler(cfg);
  for (const krr::Request& r : trace) profiler.access(r);
  const krr::MissRatioCurve predicted = profiler.mrc();

  // 3. Ground truth: simulate the K-LRU cache at 10 sizes.
  const std::vector<double> sizes = krr::capacity_grid_objects(trace, 10);
  const krr::MissRatioCurve actual = krr::sweep_klru(trace, sizes, k);

  std::printf("K-LRU (K=%u) miss ratio: predicted by KRR vs simulated\n", k);
  krr::Table table({"cache_size", "krr_predicted", "simulated", "abs_error"});
  for (double c : sizes) {
    const double p = predicted.eval(c);
    const double a = actual.eval(c);
    table.add(static_cast<std::uint64_t>(c), p, a,
              p > a ? p - a : a - p);
  }
  table.print(std::cout);
  std::printf("mean absolute error: %.5f\n", predicted.mae(actual, sizes));
  return 0;
}
