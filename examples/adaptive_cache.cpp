// Adaptive K-LRU (DLRU) demo: a cache that retunes its eviction sampling
// size K online from an embedded bank of KRR profilers, across a workload
// whose phases favour different K — the end-to-end application the paper's
// introduction motivates.
//
//   ./build/examples/adaptive_cache [--capacity=1000] [--epoch=20000]

#include <cstdio>
#include <iostream>

#include "krr.h"

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const auto capacity = static_cast<std::uint64_t>(opts.get_int("capacity", 1000));
  const auto epoch = static_cast<std::uint64_t>(opts.get_int("epoch", 20000));
  const auto phase_len = static_cast<std::size_t>(opts.get_int("phase", 120000));

  // Phase 1: a loop over 2x the cache (random replacement territory).
  // Phase 2: drift-driven reuse (LRU territory).
  krr::LoopGenerator loop(2 * capacity);
  krr::MsrGenerator drift(krr::msr_profile("web"), /*seed=*/3,
                          /*footprint=*/10 * capacity, /*uniform_size=*/1);

  krr::AdaptiveKLruConfig cfg;
  cfg.capacity = capacity;
  cfg.epoch = epoch;
  cfg.sampling_rate = 1.0;
  krr::AdaptiveKLruCache adaptive(cfg);

  // Fixed-K references.
  auto make_fixed = [&](std::uint32_t k) {
    krr::KLruConfig kc;
    kc.capacity = capacity;
    kc.sample_size = k;
    kc.seed = 17;
    return krr::KLruCache(kc);
  };
  krr::KLruCache fixed_small = make_fixed(1);
  krr::KLruCache fixed_large = make_fixed(32);

  auto run_phase = [&](krr::TraceGenerator& gen, const char* name) {
    const std::uint64_t h0 = adaptive.hits(), m0 = adaptive.misses();
    for (std::size_t i = 0; i < phase_len; ++i) {
      const krr::Request r = gen.next();
      adaptive.access(r);
      fixed_small.access(r);
      fixed_large.access(r);
    }
    const double mr =
        static_cast<double>(adaptive.misses() - m0) /
        static_cast<double>(adaptive.hits() - h0 + adaptive.misses() - m0);
    std::printf("phase %-6s: adaptive K ends at %2u, phase miss ratio %.3f\n",
                name, adaptive.current_k(), mr);
  };

  std::printf("capacity %zu objects, reconfiguration epoch %zu requests\n\n",
              static_cast<std::size_t>(capacity), static_cast<std::size_t>(epoch));
  run_phase(loop, "loop");
  run_phase(drift, "drift");

  std::printf("\nK history: ");
  for (std::uint32_t k : adaptive.k_history()) std::printf("%u ", k);
  std::printf("\n\noverall miss ratios:\n");
  krr::Table table({"cache", "miss_ratio"});
  table.add("adaptive (DLRU)", adaptive.miss_ratio());
  table.add("fixed K=1", fixed_small.miss_ratio());
  table.add("fixed K=32", fixed_large.miss_ratio());
  table.print(std::cout);
  std::printf("\nThe adaptive cache tracks whichever fixed policy suits the\n"
              "current phase, which no single fixed K can do.\n");
  return 0;
}
