// Online profiler: the deployment mode §4.4/§5.5 argues for — KRR with
// spatial sampling is cheap enough to run inside a live cache server (the
// paper measured ~0.1% of Redis's execution time). This example streams a
// drifting workload through a sampled profiler, printing periodic MRC
// snapshots and the sustained processing rate.
//
//   ./build/examples/online_profiler [--rate=0.01] [--k=5] [--requests=N]

#include <cstdio>
#include <iostream>

#include "krr.h"

int main(int argc, char** argv) {
  const krr::Options opts(argc, argv);
  const double rate = opts.get_double("rate", 0.01);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const auto requests = static_cast<std::size_t>(opts.get_int("requests", 2000000));
  const std::size_t report_every = requests / 4;

  // A workload whose behaviour changes over time: the drift component of
  // the MSR "web" profile slides its working set, so snapshots differ.
  krr::MsrGenerator gen(krr::msr_profile("web"), /*seed=*/7, 100000, 200);

  krr::KrrProfilerConfig cfg;
  cfg.k_sample = k;
  cfg.sampling_rate = rate;
  krr::KrrProfiler profiler(cfg);

  std::printf("online KRR profiler: K=%u, R=%g\n", k, rate);
  krr::Stopwatch watch;
  for (std::size_t i = 1; i <= requests; ++i) {
    profiler.access(gen.next());
    if (i % report_every == 0) {
      const krr::MissRatioCurve mrc = profiler.mrc();
      const double wss = mrc.max_size();
      std::printf("\nafter %zu requests (%zu sampled, stack depth %zu):\n", i,
                  static_cast<std::size_t>(profiler.sampled()),
                  static_cast<std::size_t>(profiler.stack_depth()));
      std::printf("  %-18s %s\n", "cache_size", "predicted_miss_ratio");
      for (double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
        std::printf("  %-18.0f %.4f\n", frac * wss, mrc.eval(frac * wss));
      }
    }
  }
  const double secs = watch.seconds();
  std::printf("\nprocessed %zu requests in %.2f s (%.1f M req/s, %.0f ns/req)\n",
              requests, secs, static_cast<double>(requests) / secs / 1e6,
              secs / static_cast<double>(requests) * 1e9);
  std::printf("model space: %.1f KiB for %zu tracked objects\n",
              static_cast<double>(profiler.space_overhead_bytes()) / 1024.0,
              static_cast<std::size_t>(profiler.stack_depth()));
  return 0;
}
