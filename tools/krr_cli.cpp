// krr_cli — command-line front end for the library.
//
//   krr_cli workloads
//   krr_cli models   [--format=table|names|json]
//   krr_cli generate --workload=msr:src1 --n=1000000 --out=trace.bin
//   krr_cli profile  --trace=trace.bin [--model=krr] --k=5 [--rate=0.001]
//                    [--bytes] [--strategy=backward|top_down|linear]
//                    [--no-correction] [--quantum=Q] [--max-stack-mb=64]
//                    [--model-opts=key=val,...] [--out=mrc.csv]
//                    [--threads=N] [--shards=S]
//                    [--metrics-out=FILE] [--format=json|table]
//                    [--progress[=SECS]] [--trace-out=FILE]
//                    [--checkpoint-out=PATH] [--checkpoint-every=N]
//                    [--resume-from=PATH] [--deadline-secs=S]
//
// Every MRC model is a registered MrcEstimator: `models` lists the
// registry (name, policy, capability flags, model-specific options), and
// `profile --model=<name>` runs any of them through the same pipeline.
// Shared flags (--k, --rate, --strategy, ...) map onto the common option
// keys every estimator accepts; model-specific knobs go through
// --model-opts=key=val,... and are validated against the model's declared
// option keys. The default --model=krr is bit-identical to the
// pre-registry profiler.
//
// Parallelism: --threads=N (default 1) profiles on N shard-worker threads
// fed from the reader thread; --shards=S (default: N) controls the hash
// partition count independently of the thread count, and the MRC depends
// only on S, never on N. For --model=krr the flags imply krr_sharded when
// N > 1 or S > 1 (the default --threads=1 --shards=1 runs the serial
// profiler unchanged, bit-identical output). Every other model with a
// `<model>_sharded` registry adapter (shards, shards_fixed, aet) is routed
// through that adapter whenever the flags are given — including at S=1
// T=1, where the adapter's output is byte-identical to the serial model —
// and models without one reject the flags as a usage error. `compare`
// accepts the same flags and applies the routing to every model in
// --models (display names stay the base names).
//   krr_cli simulate --trace=trace.bin --policy=klru --k=5 --sizes=20
//   krr_cli compare  --trace=trace.bin --models=krr,shards,aet --k=5
//                    [--sizes=20] [--rate=] [--strategy=] [--no-correction]
//                    [--quantum=] [--format=table|csv|json] [--progress]
//                    [--convergence-out=FILE] [--convergence-every=N]
//
// compare streams the input twice (no full-trace buffering): pass 1 feeds
// every requested estimator, pass 2 runs the ground-truth K-LRU simulation
// at each grid size, then a per-model MAE is reported. File inputs are
// re-read per pass; workload inputs are re-generated from the same seed.
//
// Observability: --metrics-out writes the full telemetry snapshot
// (counters, log-scale histograms, phase timings, run report) as JSON (or
// a human table with --format=table); --metrics-out=- sends it to stdout
// and suppresses the MRC CSV unless --out= redirects it, so stdout stays
// machine-parseable. --progress prints a heartbeat line to stderr every
// SECS seconds (default 2) plus a final summary. --trace-out (profile)
// records a span/event timeline — CLI phases, governor actions, per-shard
// drain lanes — as Chrome trace-event JSON, loadable in Perfetto or
// chrome://tracing. --convergence-out (compare) snapshots each model's
// curve every --convergence-every records of pass 1 and scores the frozen
// curves against the final truth, producing MAE-vs-records series.
//
// Every subcommand also accepts --workload=<spec> --n=<count> in place of
// --trace, generating the trace on the fly (--seed, --footprint,
// --uniform-size configure the generator).
//
// Trace ingestion is fault tolerant by default: damaged records and blocks
// are skipped and counted (up to --max-bad-records, default 1024), and the
// skip/corruption accounting is printed to stderr. --strict fails fast on
// the first sign of corruption instead.
//
// Run-lifecycle governance (profile): --max-stack-mb holds the model under
// a memory budget via its degradation hooks (models without the
// `governed_memory` capability reject the flag as a usage error);
// --deadline-secs finishes early with a partial MRC (exit 4);
// --checkpoint-out/--checkpoint-every write periodic CRC-validated
// snapshots and --resume-from continues from one, byte-identically
// (models with the `checkpoint` capability only).
//
// Exit codes (stable contract):
//   0  success
//   1  runtime failure (I/O error, out of resources, internal error)
//   2  usage error (unknown command/flag/model, bad option value)
//   3  corrupt input rejected (strict mode, or the --max-bad-records
//      budget was exhausted in the default skip mode; also a corrupt
//      checkpoint passed to --resume-from)
//   4  deadline reached: the run finished early and the curve/report are
//      partial (valid over the processed prefix)

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "krr.h"
#include "trace/workload_factory.h"

namespace {

using namespace krr;

class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: krr_cli <workloads|models|generate|profile|simulate|"
               "compare> [--options]\n"
               "  workloads                      list workload specs\n"
               "  models    [--format=table|names|json]   list MRC estimators\n"
               "  generate  --workload= --n= --out=   write a trace file\n"
               "  profile   --trace=|--workload= [--model=krr] --k= [--rate=]\n"
               "            [--bytes] [--strategy=] [--no-correction]\n"
               "            [--quantum=] [--max-stack-mb=]\n"
               "            [--model-opts=key=val,...]\n"
               "            [--threads=N] [--shards=S]\n"
               "            [--out=] [--metrics-out=] [--format=json|table]\n"
               "            [--progress[=secs]] [--trace-out=FILE]\n"
               "            [--checkpoint-out=] [--checkpoint-every=N]\n"
               "            [--resume-from=] [--deadline-secs=S]\n"
               "            [--shard-recovery=off|replay|rescale]\n"
               "            [--replay-journal-records=N]\n"
               "            [--checkpoint-retries=N]\n"
               "  simulate  --trace=|--workload= --policy=klru|redis|lru\n"
               "            [--k=] [--sizes=]\n"
               "  compare   --trace=|--workload= [--models=krr,shards,...]\n"
               "            --k= [--sizes=] [--rate=] [--strategy=]\n"
               "            [--no-correction] [--quantum=]\n"
               "            [--target=klru|lru|auto]\n"
               "            [--format=table|csv|json] [--progress[=secs]]\n"
               "            [--threads=N] [--shards=S]\n"
               "            [--convergence-out=FILE] [--convergence-every=N]\n"
               "ingestion:  [--strict] [--recovery=strict|skip|best-effort]\n"
               "            [--max-bad-records=N] [--format=v1|v2]\n"
               "            [--read-retries=N]\n"
               "faults:     [--fault-plan=point[#detail]@hit=N|every=K|once;...]\n"
               "            (or KRR_FAULT_PLAN env; flag wins)\n"
               "exit codes: 0 ok, 1 runtime failure, 2 usage,\n"
               "            3 corrupt input (strict mode or bad-record "
               "budget exhausted),\n"
               "            4 deadline reached (partial results)\n");
}

[[noreturn]] void usage(const std::string& error) { throw UsageError(error); }

TraceReaderOptions reader_options(const Options& opts) {
  TraceReaderOptions ro;
  ro.policy = RecoveryPolicy::kSkipAndCount;
  const std::string recovery = opts.get_string("recovery", "");
  if (!recovery.empty()) {
    if (recovery == "strict") {
      ro.policy = RecoveryPolicy::kStrict;
    } else if (recovery == "skip") {
      ro.policy = RecoveryPolicy::kSkipAndCount;
    } else if (recovery == "best-effort") {
      ro.policy = RecoveryPolicy::kBestEffort;
    } else {
      usage("unknown --recovery (use strict, skip or best-effort)");
    }
  }
  if (opts.has("strict")) ro.policy = RecoveryPolicy::kStrict;
  const auto budget = opts.get_int("max-bad-records", 1024);
  if (budget < 0) usage("--max-bad-records must be >= 0");
  ro.max_bad_records = static_cast<std::uint64_t>(budget);
  // Transient (kIoError) reads restart the whole file; the default of 3
  // attempts rides out open races and injected trace.read faults.
  const auto read_retries = opts.get_int("read-retries", 3);
  if (read_retries < 1) usage("--read-retries must be >= 1");
  ro.read_retry.max_attempts = static_cast<unsigned>(read_retries);
  ro.read_retry.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  return ro;
}

void report_ingest(const TraceReadReport& report) {
  if (report.records_skipped == 0 && report.checksum_failures == 0 &&
      !report.truncated_tail) {
    return;
  }
  std::fprintf(stderr,
               "ingest: %llu records read, %llu skipped, %llu checksum "
               "failures%s\n",
               static_cast<unsigned long long>(report.records_read),
               static_cast<unsigned long long>(report.records_skipped),
               static_cast<unsigned long long>(report.checksum_failures),
               report.truncated_tail ? ", truncated tail" : "");
}

std::vector<Request> load_input(const Options& opts, TraceReadReport* ingest,
                                obs::Tracer* tracer = nullptr) {
  // Validate the recovery flags even when the input is generated rather than
  // read from disk — a typo'd --recovery= must be a usage error either way.
  TraceReaderOptions ro = reader_options(opts);
  ro.tracer = tracer;
  if (auto path = opts.get("trace"); path && !path->empty()) {
    TraceReadReport report;
    // generate --out=x.csv writes CSV, so --trace=x.csv reads it back; the
    // recovery policy applies to malformed rows just like binary damage.
    if (path->size() > 4 && path->substr(path->size() - 4) == ".csv") {
      std::ifstream is(*path);
      if (!is) throw StatusError(io_error("cannot open for read: " + *path));
      auto csv = read_trace_csv(is, ro, &report);
      report_ingest(report);
      if (!csv.is_ok()) throw StatusError(csv.status());
      if (ingest) *ingest = report;
      return std::move(csv).value();
    }
    auto result = load_trace_file(*path, ro, &report);
    report_ingest(report);
    if (!result.is_ok()) throw StatusError(result.status());
    if (ingest) *ingest = report;
    return std::move(result).value();
  }
  const std::string spec = opts.get_string("workload", "");
  if (spec.empty()) usage("need --trace=<file> or --workload=<spec>");
  WorkloadFactoryOptions wf;
  wf.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 0));
  wf.uniform_size = static_cast<std::uint32_t>(opts.get_int("uniform-size", 0));
  auto gen = try_make_workload(spec, wf);
  if (!gen.is_ok()) usage(gen.status().message());
  const auto n = static_cast<std::size_t>(opts.get_int("n", 1000000));
  return materialize(**gen, n);
}

/// Maps the shared CLI flags onto the common EstimatorOptions keys. Only
/// flags the user actually passed are set, so estimator defaults stay in
/// charge (and the default `profile --model=krr` run is configured
/// identically to the pre-registry profiler). --model-opts entries are
/// merged last and win over the shared flags.
EstimatorOptions estimator_options_from(const Options& opts) {
  EstimatorOptions eo;
  for (const char* key : {"k", "rate", "strategy", "seed", "quantum"}) {
    if (auto value = opts.get(key); value) eo.set(key, *value);
  }
  if (opts.has("bytes")) eo.set("bytes", "1");
  if (opts.has("no-correction")) eo.set("correction", "0");
  if (opts.has("max-stack-mb")) {
    const auto mb = opts.get_int("max-stack-mb", 0);
    if (mb < 0) usage("--max-stack-mb must be >= 0");
    eo.set("max_stack_bytes", std::to_string(static_cast<std::uint64_t>(mb) << 20));
  }
  const std::string extra_spec = opts.get_string("model-opts", "");
  if (!extra_spec.empty()) {
    auto extra = EstimatorOptions::parse(extra_spec);
    if (!extra.is_ok()) usage(extra.status().message());
    eo.merge(*extra);
  }
  return eo;
}

std::vector<std::string> split_list(const std::string& spec) {
  std::vector<std::string> out;
  std::string item;
  for (char c : spec) {
    if (c == ',') {
      if (!item.empty()) out.push_back(item);
      item.clear();
    } else {
      item += c;
    }
  }
  if (!item.empty()) out.push_back(item);
  return out;
}

int cmd_workloads() {
  for (const std::string& spec : known_workload_specs()) {
    std::printf("%s\n", spec.c_str());
  }
  return 0;
}

std::string caps_string(const EstimatorCapabilities& caps) {
  std::string s;
  const auto add = [&s](const char* flag) {
    if (!s.empty()) s += ',';
    s += flag;
  };
  if (caps.models_klru) add("klru");
  if (caps.byte_granularity) add("bytes");
  if (caps.spatial_sampling) add("sampling");
  if (caps.sharded) add("sharded");
  if (caps.metrics) add("metrics");
  if (caps.reference_oracle) add("oracle");
  if (caps.governed_memory) add("governed");
  if (caps.checkpoint) add("checkpoint");
  return s.empty() ? "-" : s;
}

int cmd_models(const Options& opts) {
  const std::string format = opts.get_string("format", "table");
  const auto infos = EstimatorRegistry::instance().list();
  if (format == "names") {
    for (const auto& info : infos) std::printf("%s\n", info.name.c_str());
    return 0;
  }
  if (format == "json") {
    obs::Json root = obs::Json::array();
    for (const auto& info : infos) {
      obs::Json entry = obs::Json::object();
      entry.set("name", obs::Json(info.name));
      entry.set("policy", obs::Json(info.policy));
      entry.set("description", obs::Json(info.description));
      obs::Json caps = obs::Json::object();
      caps.set("models_klru", obs::Json(info.caps.models_klru));
      caps.set("byte_granularity", obs::Json(info.caps.byte_granularity));
      caps.set("spatial_sampling", obs::Json(info.caps.spatial_sampling));
      caps.set("sharded", obs::Json(info.caps.sharded));
      caps.set("metrics", obs::Json(info.caps.metrics));
      caps.set("reference_oracle", obs::Json(info.caps.reference_oracle));
      caps.set("governed_memory", obs::Json(info.caps.governed_memory));
      caps.set("checkpoint", obs::Json(info.caps.checkpoint));
      entry.set("capabilities", std::move(caps));
      obs::Json keys = obs::Json::array();
      for (const auto& key : info.option_keys) keys.push_back(obs::Json(key));
      entry.set("option_keys", std::move(keys));
      root.push_back(std::move(entry));
    }
    root.dump(std::cout, 0);
    std::cout << '\n';
    return 0;
  }
  if (format != "table") {
    usage("unknown --format for models (use table, names or json)");
  }
  Table table({"model", "policy", "capabilities", "options", "description"});
  for (const auto& info : infos) {
    std::string keys;
    for (const auto& key : info.option_keys) {
      if (!keys.empty()) keys += ',';
      keys += key;
    }
    table.add(info.name, info.policy, caps_string(info.caps),
              keys.empty() ? "-" : keys, info.description);
  }
  table.print(std::cout);
  return 0;
}

int cmd_generate(const Options& opts) {
  const std::string out = opts.get_string("out", "");
  if (out.empty()) usage("generate needs --out=<file>");
  const std::string format = opts.get_string("format", "v2");
  if (format != "v1" && format != "v2") usage("unknown --format (use v1 or v2)");
  const auto trace = load_input(opts, nullptr);
  if (out.size() > 4 && out.substr(out.size() - 4) == ".csv") {
    std::ofstream os(out);
    if (!os) throw StatusError(io_error("cannot open " + out));
    write_trace_csv(os, trace);
  } else {
    save_trace(out, trace,
               format == "v1" ? TraceFormat::kV1 : TraceFormat::kV2);
  }
  std::fprintf(stderr, "wrote %zu requests (%zu distinct keys) to %s\n",
               trace.size(), count_distinct(trace), out.c_str());
  return 0;
}

/// Writes the telemetry snapshot. JSON is the machine format (registry
/// sections + run_report, same numbers the library reports); table is the
/// human format.
void write_metrics(std::ostream& os, const std::string& format,
                   const obs::MetricsRegistry& registry, const RunReport& report) {
  if (format == "json") {
    obs::Json root = registry.to_json();
    root.set("instrumentation_compiled_in", obs::Json(obs::kHotPathInstrumentation));
    root.set("run_report", to_json(report));
    root.dump(os, 0);
    os << '\n';
    return;
  }
  registry.write_table(os);
  os << "-- run report --\n";
  const obs::Json report_json = to_json(report);
  for (const auto& [name, value] : report_json.members()) {
    os << "  " << name << "  " << value.dump() << '\n';
  }
}

int cmd_profile(const Options& opts) {
  const std::string metrics_out = opts.get_string("metrics-out", "");
  const std::string metrics_format = opts.get_string("format", "json");
  if (metrics_format != "json" && metrics_format != "table") {
    usage("unknown --format for profile (use json or table)");
  }
  const bool want_metrics = !metrics_out.empty() || opts.has("progress");

  // --trace-out arms the span tracer for the whole run: CLI phases on lane
  // 0, governor limbs as instant events, per-shard drain lanes for the
  // sharded pipeline. Detached (the default) costs one branch per site.
  const std::string trace_out = opts.get_string("trace-out", "");
  std::optional<obs::Tracer> tracer_storage;
  if (!trace_out.empty()) tracer_storage.emplace();
  obs::Tracer* tracer = tracer_storage ? &*tracer_storage : nullptr;

  double phase_load = 0.0, phase_profile = 0.0, phase_mrc = 0.0,
         phase_output = 0.0;
  TraceReadReport ingest;
  std::vector<Request> trace;
  {
    obs::ScopedTraceSpan span(tracer, "phase.ingest", "phase");
    ScopedTimer timer(phase_load);
    trace = load_input(opts, &ingest, tracer);
  }

  std::string model = opts.get_string("model", "krr");
  EstimatorOptions eopts = estimator_options_from(opts);
  const auto threads_opt = opts.get_int("threads", 1);
  if (threads_opt < 1) usage("--threads must be >= 1");
  const auto shards_opt = opts.get_int("shards", 0);
  if (shards_opt < 0) usage("--shards must be >= 1");
  const auto threads = static_cast<unsigned>(threads_opt);
  // --shards defaults to one shard per worker thread.
  const auto shards = shards_opt == 0 ? static_cast<std::uint32_t>(threads)
                                      : static_cast<std::uint32_t>(shards_opt);
  // The fan-out flags route the run through the sharded pipeline. For krr
  // the historical contract holds: --threads=1 --shards=1 stays on the
  // serial profiler (bit-identical output). Any other model is mapped onto
  // its registry `<model>_sharded` adapter whenever the flags are given —
  // even at S=1/T=1, so the adapter's serial path is directly comparable
  // to the base model — and rejected when no adapter exists.
  const bool fanout_flags = opts.has("threads") || opts.has("shards");
  const auto is_sharded_model = [](const std::string& name) {
    return name.size() > 8 &&
           name.compare(name.size() - 8, 8, "_sharded") == 0;
  };
  if (model == "krr" || model == "krr_sharded") {
    if (threads > 1 || shards > 1) model = "krr_sharded";
  } else if (!is_sharded_model(model) &&
             (fanout_flags || threads > 1 || shards > 1)) {
    const std::string mapped = model + "_sharded";
    if (!EstimatorRegistry::instance().contains(mapped)) {
      usage("--threads/--shards: model '" + model +
            "' has no sharded adapter (see krr_cli models)");
    }
    model = mapped;
  }
  if (is_sharded_model(model)) {
    if (!eopts.has("threads")) eopts.set("threads", std::to_string(threads));
    if (!eopts.has("shards")) eopts.set("shards", std::to_string(shards));
  }
  // Worker-failure policy, in operator vocabulary: off = fail the run
  // (strict), replay = resurrect from mini-checkpoint + journal, rescale =
  // drop the shard and extrapolate from survivors (best_effort).
  const std::string shard_recovery = opts.get_string("shard-recovery", "");
  if (!shard_recovery.empty()) {
    std::string failure_mode;
    if (shard_recovery == "off") {
      failure_mode = "strict";
    } else if (shard_recovery == "replay") {
      failure_mode = "replay";
    } else if (shard_recovery == "rescale") {
      failure_mode = "best_effort";
    } else {
      usage("unknown --shard-recovery (use off, replay or rescale)");
    }
    if (!is_sharded_model(model)) {
      usage("--shard-recovery: model '" + model +
            "' is not sharded (pass --threads/--shards to select the "
            "sharded pipeline)");
    }
    if (!eopts.has("failure_mode")) eopts.set("failure_mode", failure_mode);
  }
  if (opts.has("replay-journal-records")) {
    const auto journal = opts.get_int("replay-journal-records", 0);
    if (journal < 1) usage("--replay-journal-records must be >= 1");
    if (!is_sharded_model(model)) {
      usage("--replay-journal-records: model '" + model + "' is not sharded");
    }
    if (!eopts.has("journal_records")) {
      eopts.set("journal_records", std::to_string(journal));
    }
  }
  auto created = EstimatorRegistry::instance().create(model, eopts);
  if (!created.is_ok()) throw StatusError(created.status());
  std::unique_ptr<MrcEstimator> est = std::move(*created);

  // Run-lifecycle governance flags.
  const std::string checkpoint_out = opts.get_string("checkpoint-out", "");
  const std::string resume_from = opts.get_string("resume-from", "");
  const auto checkpoint_every = opts.get_int("checkpoint-every", 0);
  if (checkpoint_every < 0) usage("--checkpoint-every must be >= 0");
  if (checkpoint_every > 0 && checkpoint_out.empty()) {
    usage("--checkpoint-every needs --checkpoint-out=<path>");
  }
  const double deadline_secs = opts.get_double("deadline-secs", 0.0);
  if (deadline_secs < 0) usage("--deadline-secs must be >= 0");
  if ((!checkpoint_out.empty() || !resume_from.empty()) &&
      !est->info().caps.checkpoint) {
    const char* flag = !checkpoint_out.empty() ? "--checkpoint-out"
                                               : "--resume-from";
    usage(std::string(flag) + ": model '" + model +
          "' declares checkpoint=false and cannot honor checkpoint/resume "
          "flags (run `krr_cli models` and pick a model whose capability "
          "list includes `checkpoint`)");
  }

  std::uint64_t resume_offset = 0;
  if (!resume_from.empty()) {
    std::string payload;
    auto header = read_checkpoint(resume_from, &payload);
    if (!header.is_ok()) throw StatusError(header.status());
    if (header->config_crc != checkpoint_fingerprint(model, eopts)) {
      usage("checkpoint " + resume_from +
            " was written under a different model/option configuration and "
            "cannot resume this run");
    }
    if (header->records > trace.size()) {
      throw StatusError(bad_record_error(
          "checkpoint claims " + std::to_string(header->records) +
          " records already processed but the input has only " +
          std::to_string(trace.size())));
    }
    if (Status s = est->load_state(payload); !s.is_ok()) throw StatusError(s);
    resume_offset = header->records;
    std::fprintf(stderr, "resumed from %s at record %llu\n",
                 resume_from.c_str(),
                 static_cast<unsigned long long>(resume_offset));
  }

  obs::MetricsRegistry registry;
  std::optional<obs::PipelineMetrics> metrics;
  if (want_metrics) metrics.emplace(registry);
  std::optional<obs::Heartbeat> heartbeat;
  if (opts.has("progress")) {
    const double interval = opts.get_double("progress", 2.0);
    if (interval < 0) usage("--progress must be >= 0 seconds");
    heartbeat.emplace(interval, std::cerr);
    // Resumed runs tick only over the remaining records; the baseline keeps
    // the end-of-run summary counting the full logical position.
    heartbeat->set_baseline(resume_offset);
  }

  if (want_metrics) est->attach_metrics(&*metrics);
  if (tracer != nullptr) est->attach_tracer(tracer);

  // The governor enforces the memory budget / deadline / checkpoint cadence
  // from the producer loop; it is armed only when one of those limbs is.
  RunGovernorConfig gcfg;
  gcfg.max_stack_bytes =
      static_cast<std::uint64_t>(eopts.get_int("max_stack_bytes", 0));
  gcfg.deadline_secs = deadline_secs;
  gcfg.checkpoint_every = static_cast<std::uint64_t>(checkpoint_every);
  const auto checkpoint_retries = opts.get_int("checkpoint-retries", 3);
  if (checkpoint_retries < 1) usage("--checkpoint-retries must be >= 1");
  gcfg.checkpoint_retry.max_attempts =
      static_cast<unsigned>(checkpoint_retries);
  gcfg.checkpoint_retry.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto write_snapshot =
      [&est, &model, &eopts, checkpoint_out,
       resume_offset](std::uint64_t records) -> StatusOr<std::uint64_t> {
    std::string payload;
    if (Status s = est->save_state(&payload); !s.is_ok()) return s;
    CheckpointHeader header;
    header.config_crc = checkpoint_fingerprint(model, eopts);
    header.records = resume_offset + records;
    if (Status s = write_checkpoint_atomic(checkpoint_out, header, payload);
        !s.is_ok()) {
      return s;
    }
    // Container size: 32-byte header + payload + trailing crc32.
    return static_cast<std::uint64_t>(payload.size()) + 36;
  };
  if (!checkpoint_out.empty() && gcfg.checkpoint_every > 0) {
    gcfg.checkpoint_fn = write_snapshot;
  }
  std::optional<RunGovernor> governor;
  if (gcfg.max_stack_bytes > 0 || gcfg.deadline_secs > 0 ||
      gcfg.checkpoint_fn) {
    governor.emplace(gcfg, est.get(), want_metrics ? &registry : nullptr,
                     tracer);
  }

  bool deadline_partial = false;
  std::uint64_t fed = resume_offset;
  MissRatioCurve mrc;
  {
    ScopedTimer timer(phase_profile);
    {
      obs::ScopedTraceSpan span(tracer, "phase.profile", "phase");
      for (std::size_t i = resume_offset; i < trace.size(); ++i) {
        est->access(trace[i]);
        ++fed;
        if (governor && !governor->on_access()) {
          deadline_partial = true;
          break;
        }
        if (heartbeat) {
          heartbeat->tick([&] {
            est->refresh_metrics_gauges();
            return est->snapshot();
          });
        }
      }
    }
    obs::ScopedTraceSpan span(tracer, "phase.finish", "phase");
    est->finish();
    if (governor) governor->finalize();
    if (heartbeat) heartbeat->finish(est->snapshot());
  }
  // A final snapshot so the checkpoint file always reflects the last state
  // (completed or deadline-cut), ready for a later resume.
  if (!checkpoint_out.empty()) {
    // The final snapshot is what a later --resume-from reads, so it gets
    // the same transient-failure retries as the governor's periodic writes.
    StatusOr<std::uint64_t> written = write_snapshot(fed - resume_offset);
    for (unsigned attempt = 1;
         !written.is_ok() && attempt < gcfg.checkpoint_retry.max_attempts;
         ++attempt) {
      if (want_metrics) registry.counter("governor.checkpoint_retries").inc();
      gcfg.checkpoint_retry.sleep(attempt);
      written = write_snapshot(fed - resume_offset);
    }
    if (!written.is_ok()) throw StatusError(written.status());
  }
  std::optional<obs::ScopedTraceSpan> report_span;
  if (tracer != nullptr) report_span.emplace(tracer, "phase.report", "phase");
  {
    ScopedTimer timer(phase_mrc);
    mrc = est->mrc();
  }
  RunReport report = est->run_report(&ingest);
  if (deadline_partial) report.partial = true;
  if (want_metrics) {
    est->refresh_metrics_gauges();
    est->export_gauges(registry);
  }
  const obs::HeartbeatSnapshot final_state = est->snapshot();
  if (report.producer_stall_seconds > 0.01) {
    std::fprintf(stderr, "fan-out backpressure: %.3f s producer stall\n",
                 report.producer_stall_seconds);
  }
  if (report.shards_failed > 0 || report.shards_resurrected > 0) {
    std::fprintf(stderr,
                 "shard recovery: %s (%llu worker(s) resurrected, %llu "
                 "records replayed, %llu shard(s) dropped, %llu records "
                 "lost)\n",
                 report.recovery.c_str(),
                 static_cast<unsigned long long>(report.shards_resurrected),
                 static_cast<unsigned long long>(report.replayed_records),
                 static_cast<unsigned long long>(report.shards_failed),
                 static_cast<unsigned long long>(report.dropped_records));
  }

  const double secs = phase_profile + phase_mrc;
  const std::string out = opts.get_string("out", "");
  // --metrics-out=- claims stdout for the snapshot: without an explicit
  // --out the MRC CSV is skipped so stdout stays machine-parseable.
  const bool metrics_claim_stdout = metrics_out == "-";
  {
    ScopedTimer timer(phase_output);
    if (out.empty()) {
      if (!metrics_claim_stdout) mrc.write_csv(std::cout);
    } else {
      std::ofstream os(out);
      if (!os) throw StatusError(io_error("cannot open " + out));
      mrc.write_csv(os);
    }
  }
  if (want_metrics) {
    fold_ingest_metrics(ingest, registry);
    registry.gauge("phase.load_seconds").set(phase_load);
    registry.gauge("phase.profile_seconds").set(phase_profile);
    registry.gauge("phase.mrc_seconds").set(phase_mrc);
    registry.gauge("phase.output_seconds").set(phase_output);
    registry.gauge("phase.total_seconds")
        .set(phase_load + phase_profile + phase_mrc + phase_output);
    if (!metrics_out.empty()) {
      if (metrics_out == "-") {
        write_metrics(std::cout, metrics_format, registry, report);
      } else {
        std::ofstream os(metrics_out);
        if (!os) throw StatusError(io_error("cannot open " + metrics_out));
        write_metrics(os, metrics_format, registry, report);
      }
    }
  }
  report_span.reset();  // closes phase.report before the trace is drained
  if (tracer != nullptr) {
    if (Status s = tracer->write_file(trace_out); !s.is_ok()) {
      throw StatusError(s);
    }
    std::fprintf(stderr, "trace: %llu events (%llu dropped) -> %s\n",
                 static_cast<unsigned long long>(tracer->recorded()),
                 static_cast<unsigned long long>(tracer->dropped()),
                 trace_out.c_str());
  }
  if (is_sharded_model(model)) {
    // --model-opts can override the fan-out geometry, so report the
    // effective values the estimator was built with, not the raw flags.
    std::fprintf(stderr,
                 "profiled %zu requests (%zu sampled) in %.3f s across %lld "
                 "shards on %lld threads with model %s; stack depth %zu\n",
                 trace.size(), static_cast<std::size_t>(final_state.sampled),
                 secs,
                 static_cast<long long>(eopts.get_int("shards", shards)),
                 static_cast<long long>(eopts.get_int("threads", threads)),
                 model.c_str(),
                 static_cast<std::size_t>(final_state.stack_depth));
  } else if (model == "krr") {
    std::fprintf(stderr,
                 "profiled %zu requests (%zu sampled) in %.3f s; stack depth %zu\n",
                 trace.size(), static_cast<std::size_t>(final_state.sampled),
                 secs, static_cast<std::size_t>(final_state.stack_depth));
  } else {
    std::fprintf(stderr, "profiled %zu requests in %.3f s with model %s\n",
                 trace.size(), secs, model.c_str());
  }
  if (report.degradation_events > 0) {
    std::fprintf(stderr,
                 "degraded sampling rate %llu time(s) to stay under "
                 "--max-stack-mb=%lld; final rate %g\n",
                 static_cast<unsigned long long>(report.degradation_events),
                 static_cast<long long>(opts.get_int("max-stack-mb", 0)),
                 report.final_sampling_rate);
  }
  if (governor && governor->report().budget_exhausted) {
    std::fprintf(stderr,
                 "warning: model '%s' could not degrade below the "
                 "--max-stack-mb budget; peak resident %llu bytes\n",
                 model.c_str(),
                 static_cast<unsigned long long>(
                     governor->report().peak_space_bytes));
  }
  if (deadline_partial) {
    std::fprintf(stderr,
                 "deadline of %.3f s reached after %llu of %zu records; "
                 "the curve covers the processed prefix only\n",
                 deadline_secs, static_cast<unsigned long long>(fed),
                 trace.size());
    return 4;
  }
  return 0;
}

int cmd_simulate(const Options& opts) {
  const auto trace = load_input(opts, nullptr);
  const std::string policy = opts.get_string("policy", "klru");
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const bool bytes = opts.has("bytes");
  const auto sizes = bytes ? capacity_grid_bytes(trace, n_sizes)
                           : capacity_grid_objects(trace, n_sizes);
  MissRatioCurve curve;
  if (policy == "klru") {
    curve = sweep_klru(trace, sizes, k);
  } else if (policy == "redis") {
    RedisLruConfig cfg;
    cfg.maxmemory_samples = k;
    curve = sweep_redis(trace, sizes, cfg);
  } else if (policy == "lru") {
    curve = sweep_lru(trace, sizes);
  } else {
    usage("unknown --policy (use klru, redis or lru)");
  }
  curve.write_csv(std::cout);
  return 0;
}

// ---------------------------------------------------------------------------
// compare: streaming multi-model evaluation
// ---------------------------------------------------------------------------

/// A replayable request stream: compare needs two identical passes (one to
/// feed the estimators, one for the ground-truth simulation) without
/// buffering the whole trace in memory for file inputs.
class RequestSource {
 public:
  virtual ~RequestSource() = default;
  /// Streams one full pass of the input through `fn`.
  virtual void pass(const std::function<void(const Request&)>& fn) = 0;
  /// Ingestion accounting for the most recent pass.
  virtual const TraceReadReport& report() const noexcept = 0;
};

/// Binary trace file, re-read (and re-validated) per pass.
class BinaryFileSource final : public RequestSource {
 public:
  BinaryFileSource(std::string path, const TraceReaderOptions& options)
      : path_(std::move(path)), options_(options) {}

  void pass(const std::function<void(const Request&)>& fn) override {
    std::ifstream is(path_, std::ios::binary);
    if (!is) throw StatusError(io_error("cannot open for read: " + path_));
    TraceReader reader(is, options_);
    Request r;
    while (reader.next(r)) fn(r);
    report_ = reader.report();
    if (!reader.status().is_ok()) throw StatusError(reader.status());
  }
  const TraceReadReport& report() const noexcept override { return report_; }

 private:
  std::string path_;
  TraceReaderOptions options_;
  TraceReadReport report_;
};

/// In-memory trace (CSV inputs, which the reader cannot stream twice).
class MemorySource final : public RequestSource {
 public:
  MemorySource(std::vector<Request> trace, const TraceReadReport& report)
      : trace_(std::move(trace)), report_(report) {}

  void pass(const std::function<void(const Request&)>& fn) override {
    for (const Request& r : trace_) fn(r);
  }
  const TraceReadReport& report() const noexcept override { return report_; }

 private:
  std::vector<Request> trace_;
  TraceReadReport report_;
};

/// Synthetic workload, re-generated from the same seed per pass (generators
/// are replayable by contract).
class GeneratorSource final : public RequestSource {
 public:
  GeneratorSource(std::string spec, const WorkloadFactoryOptions& options,
                  std::uint64_t n)
      : spec_(std::move(spec)), options_(options), n_(n) {
    report_.records_read = n_;
  }

  void pass(const std::function<void(const Request&)>& fn) override {
    auto gen = try_make_workload(spec_, options_);
    if (!gen.is_ok()) usage(gen.status().message());
    for (std::uint64_t i = 0; i < n_; ++i) fn((*gen)->next());
  }
  const TraceReadReport& report() const noexcept override { return report_; }

 private:
  std::string spec_;
  WorkloadFactoryOptions options_;
  std::uint64_t n_;
  TraceReadReport report_;
};

std::unique_ptr<RequestSource> make_source(const Options& opts) {
  const TraceReaderOptions ro = reader_options(opts);
  if (auto path = opts.get("trace"); path && !path->empty()) {
    if (path->size() > 4 && path->substr(path->size() - 4) == ".csv") {
      std::ifstream is(*path);
      if (!is) throw StatusError(io_error("cannot open for read: " + *path));
      TraceReadReport report;
      auto csv = read_trace_csv(is, ro, &report);
      if (!csv.is_ok()) throw StatusError(csv.status());
      return std::make_unique<MemorySource>(std::move(csv).value(), report);
    }
    return std::make_unique<BinaryFileSource>(*path, ro);
  }
  const std::string spec = opts.get_string("workload", "");
  if (spec.empty()) usage("need --trace=<file> or --workload=<spec>");
  WorkloadFactoryOptions wf;
  wf.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 0));
  wf.uniform_size = static_cast<std::uint32_t>(opts.get_int("uniform-size", 0));
  // Validate the spec eagerly so a typo is a usage error before pass 1.
  if (auto gen = try_make_workload(spec, wf); !gen.is_ok()) {
    usage(gen.status().message());
  }
  const auto n = opts.get_int("n", 1000000);
  if (n < 0) usage("--n must be >= 0");
  return std::make_unique<GeneratorSource>(spec, wf,
                                           static_cast<std::uint64_t>(n));
}

int cmd_compare(const Options& opts) {
  if (opts.has("bytes")) {
    usage("compare evaluates object-granularity curves; --bytes is not "
          "supported here");
  }
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const std::string format = opts.get_string("format", "table");
  if (format != "table" && format != "csv" && format != "json") {
    usage("unknown --format for compare (use table, csv or json)");
  }
  // Ground-truth policy: klru (default), lru, or auto — which picks each
  // model's natural target from its capability flags (models_klru -> the
  // K-LRU sweep, everything else -> exact LRU), so e.g. `shards` or `aet`
  // is scored against the policy it actually models.
  const std::string target = opts.get_string("target", "klru");
  if (target != "klru" && target != "lru" && target != "auto") {
    usage("unknown --target for compare (use klru, lru or auto)");
  }
  const std::vector<std::string> models =
      split_list(opts.get_string("models", opts.get_string("model", "krr")));
  if (models.empty()) usage("--models needs at least one model name");

  const EstimatorOptions shared = estimator_options_from(opts);
  auto& registry = EstimatorRegistry::instance();

  // --threads/--shards apply the same sharded routing as `profile`, per
  // model: names with a `<name>_sharded` registry adapter run through it
  // (krr via krr_sharded), everything else is rejected rather than
  // silently run serial. Display/JSON keys keep the original names so
  // sharded and serial runs of the same invocation line up column for
  // column.
  const auto threads_opt = opts.get_int("threads", 1);
  if (threads_opt < 1) usage("--threads must be >= 1");
  const auto shards_opt = opts.get_int("shards", 0);
  if (shards_opt < 0) usage("--shards must be >= 1");
  const bool fanout_flags = opts.has("threads") || opts.has("shards");
  const auto threads = static_cast<unsigned>(threads_opt);
  const auto shards = shards_opt == 0 ? static_cast<std::uint32_t>(threads)
                                      : static_cast<std::uint32_t>(shards_opt);
  std::vector<std::unique_ptr<MrcEstimator>> estimators;
  estimators.reserve(models.size());
  for (const std::string& name : models) {
    std::string resolved = name;
    EstimatorOptions eopts = shared;
    if (fanout_flags) {
      const bool already_sharded =
          name.size() > 8 && name.compare(name.size() - 8, 8, "_sharded") == 0;
      if (!already_sharded) {
        const std::string mapped =
            name == "krr" ? std::string("krr_sharded") : name + "_sharded";
        if (!registry.contains(mapped)) {
          usage("--threads/--shards: model '" + name +
                "' has no sharded adapter (see krr_cli models)");
        }
        resolved = mapped;
      }
      if (!eopts.has("threads")) eopts.set("threads", std::to_string(threads));
      if (!eopts.has("shards")) eopts.set("shards", std::to_string(shards));
    }
    auto est = registry.create(resolved, eopts);
    if (!est.is_ok()) throw StatusError(est.status());
    estimators.push_back(std::move(*est));
  }

  std::optional<obs::Heartbeat> heartbeat;
  if (opts.has("progress")) {
    const double interval = opts.get_double("progress", 2.0);
    if (interval < 0) usage("--progress must be >= 0 seconds");
    heartbeat.emplace(interval, std::cerr);
  }

  // Accuracy-convergence telemetry: every N records of pass 1, freeze each
  // model's current curve; once pass 2 has produced the truth, each frozen
  // curve is scored on the final grid, giving MAE as a function of records
  // seen (how fast each model converges, at what cost). Sharded models
  // cannot evaluate mid-run (their workers own the state), so they only
  // appear in the final snapshot.
  const std::string convergence_out = opts.get_string("convergence-out", "");
  const auto convergence_every_raw = opts.get_int("convergence-every", 100000);
  if (convergence_every_raw < 1) usage("--convergence-every must be >= 1");
  if (opts.has("convergence-every") && convergence_out.empty()) {
    usage("--convergence-every needs --convergence-out=<path>");
  }
  const auto convergence_every =
      static_cast<std::uint64_t>(convergence_every_raw);
  struct ConvergenceSnap {
    std::uint64_t records = 0;
    double seconds = 0.0;
    // One curve per estimator; a null optional marks a model that could not
    // be evaluated at this point (sharded mid-run).
    std::vector<std::optional<MissRatioCurve>> curves;
  };
  std::vector<ConvergenceSnap> convergence;
  Stopwatch convergence_watch;
  const auto take_convergence_snapshot = [&](std::uint64_t records,
                                             bool final_snapshot) {
    ConvergenceSnap snap;
    snap.records = records;
    snap.seconds = static_cast<double>(convergence_watch.nanos()) / 1e9;
    snap.curves.reserve(estimators.size());
    for (auto& est : estimators) {
      if (!final_snapshot && est->info().caps.sharded) {
        snap.curves.emplace_back(std::nullopt);
      } else {
        snap.curves.emplace_back(est->mrc({}));
      }
    }
    convergence.push_back(std::move(snap));
  };

  // Pass 1 (predict): every estimator sees every reference; the distinct
  // key count fixes the evaluation grid for pass 2.
  std::unordered_set<std::uint64_t> distinct;
  std::uint64_t fed = 0;
  auto source = make_source(opts);
  source->pass([&](const Request& r) {
    distinct.insert(r.key);
    for (auto& est : estimators) est->access(r);
    ++fed;
    if (!convergence_out.empty() && fed % convergence_every == 0) {
      take_convergence_snapshot(fed, /*final_snapshot=*/false);
    }
    if (heartbeat) {
      heartbeat->tick([&] {
        obs::HeartbeatSnapshot s;
        s.records = fed;
        s.stack_depth = distinct.size();
        return s;
      });
    }
  });
  report_ingest(source->report());
  for (auto& est : estimators) est->finish();
  const std::uint64_t requests = fed;
  if (requests == 0) {
    std::fprintf(stderr, "compare: empty input, nothing to evaluate\n");
    return 0;
  }

  const std::vector<double> sizes =
      evenly_spaced_sizes(static_cast<double>(distinct.size()), n_sizes);

  // Pass 2 (simulate): one cache per grid size and target policy, all fed
  // from a single streaming pass — per-cache results are identical to the
  // sweep's one-capacity-at-a-time replay because the caches are
  // independent. `auto` simulates both policies in the same pass.
  const bool any_klru_model = std::any_of(
      estimators.begin(), estimators.end(),
      [](const auto& est) { return est->info().caps.models_klru; });
  const bool want_klru =
      target == "klru" || (target == "auto" && any_klru_model);
  const bool want_lru =
      target == "lru" ||
      (target == "auto" &&
       std::any_of(estimators.begin(), estimators.end(), [](const auto& est) {
         return !est->info().caps.models_klru;
       }));
  std::vector<KLruCache> klru_caches;
  std::vector<LruCache> lru_caches;
  for (double c : sizes) {
    const auto capacity =
        std::max<std::uint64_t>(1, static_cast<std::uint64_t>(c));
    if (want_klru) {
      KLruConfig cfg;
      cfg.capacity = capacity;
      cfg.sample_size = k;
      klru_caches.emplace_back(cfg);
    }
    if (want_lru) lru_caches.emplace_back(capacity);
  }
  source->pass([&](const Request& r) {
    for (auto& cache : klru_caches) cache.access(r);
    for (auto& cache : lru_caches) cache.access(r);
    ++fed;
    if (heartbeat) {
      heartbeat->tick([&] {
        obs::HeartbeatSnapshot s;
        s.records = fed;
        return s;
      });
    }
  });
  if (heartbeat) {
    obs::HeartbeatSnapshot s;
    s.records = fed;
    heartbeat->finish(s);
  }
  MissRatioCurve actual_klru, actual_lru;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    if (want_klru) actual_klru.add_point(sizes[i], klru_caches[i].miss_ratio());
    if (want_lru) actual_lru.add_point(sizes[i], lru_caches[i].miss_ratio());
  }
  // The truth curve each model is scored against.
  const auto truth_for = [&](std::size_t m) -> const MissRatioCurve& {
    if (target == "klru") return actual_klru;
    if (target == "lru") return actual_lru;
    return estimators[m]->info().caps.models_klru ? actual_klru : actual_lru;
  };

  std::vector<MissRatioCurve> predicted;
  std::vector<double> maes;
  predicted.reserve(estimators.size());
  for (std::size_t m = 0; m < estimators.size(); ++m) {
    predicted.push_back(estimators[m]->mrc(sizes));
    maes.push_back(predicted.back().mae(truth_for(m), sizes));
  }

  if (!convergence_out.empty()) {
    // Close the series with a post-finish snapshot (every model, including
    // sharded ones, is evaluable now), then score every frozen curve
    // against the truth the run just produced.
    if (convergence.empty() || convergence.back().records != requests) {
      take_convergence_snapshot(requests, /*final_snapshot=*/true);
    }
    obs::Json root = obs::Json::object();
    root.set("requests", obs::Json(requests));
    root.set("every", obs::Json(convergence_every));
    root.set("target", obs::Json(target));
    obs::Json jsizes = obs::Json::array();
    for (double s : sizes) jsizes.push_back(obs::Json(s));
    root.set("sizes", std::move(jsizes));
    obs::Json jsnaps = obs::Json::array();
    for (const ConvergenceSnap& snap : convergence) {
      obs::Json jsnap = obs::Json::object();
      jsnap.set("records", obs::Json(snap.records));
      jsnap.set("seconds", obs::Json(snap.seconds));
      obs::Json jmae = obs::Json::object();
      for (std::size_t m = 0; m < models.size(); ++m) {
        // null = not evaluable at this point (sharded mid-run).
        jmae.set(models[m], snap.curves[m]
                                ? obs::Json(snap.curves[m]->mae(truth_for(m),
                                                                sizes))
                                : obs::Json());
      }
      jsnap.set("mae", std::move(jmae));
      jsnaps.push_back(std::move(jsnap));
    }
    root.set("snapshots", std::move(jsnaps));
    std::ofstream os(convergence_out);
    if (!os) throw StatusError(io_error("cannot open " + convergence_out));
    root.dump(os, 0);
    os << '\n';
  }

  if (format == "json") {
    obs::Json root = obs::Json::object();
    root.set("k", obs::Json(static_cast<std::uint64_t>(k)));
    root.set("target", obs::Json(target));
    root.set("requests", obs::Json(requests));
    root.set("distinct_keys",
             obs::Json(static_cast<std::uint64_t>(distinct.size())));
    obs::Json jsizes = obs::Json::array();
    for (double s : sizes) jsizes.push_back(obs::Json(s));
    root.set("sizes", std::move(jsizes));
    if (target == "auto") {
      if (want_klru) {
        obs::Json jsim = obs::Json::array();
        for (double s : sizes) jsim.push_back(obs::Json(actual_klru.eval(s)));
        root.set("simulated_klru", std::move(jsim));
      }
      if (want_lru) {
        obs::Json jsim = obs::Json::array();
        for (double s : sizes) jsim.push_back(obs::Json(actual_lru.eval(s)));
        root.set("simulated_lru", std::move(jsim));
      }
    } else {
      const MissRatioCurve& actual =
          target == "klru" ? actual_klru : actual_lru;
      obs::Json jsim = obs::Json::array();
      for (double s : sizes) jsim.push_back(obs::Json(actual.eval(s)));
      root.set("simulated", std::move(jsim));
    }
    obs::Json jmodels = obs::Json::object();
    for (std::size_t m = 0; m < models.size(); ++m) {
      obs::Json entry = obs::Json::object();
      obs::Json jmrc = obs::Json::array();
      for (double s : sizes) jmrc.push_back(obs::Json(predicted[m].eval(s)));
      entry.set("mrc", std::move(jmrc));
      entry.set("mae", obs::Json(maes[m]));
      // The same structured run report `profile --metrics-out` emits, so
      // fan-out counters (producer stalls, degradations, governance) are
      // not lost when comparing models side by side.
      entry.set("run_report",
                to_json(estimators[m]->run_report(&source->report())));
      if (target == "auto") {
        entry.set("truth",
                  obs::Json(std::string(estimators[m]->info().caps.models_klru
                                            ? "klru"
                                            : "lru")));
      }
      jmodels.set(models[m], std::move(entry));
    }
    root.set("models", std::move(jmodels));
    root.dump(std::cout, 0);
    std::cout << '\n';
    return 0;
  }

  std::vector<std::string> header{"size"};
  if (target == "auto") {
    if (want_klru) header.push_back("simulated_klru");
    if (want_lru) header.push_back("simulated_lru");
  } else {
    header.push_back("simulated");
  }
  header.insert(header.end(), models.begin(), models.end());
  Table table(header);
  for (double s : sizes) {
    std::vector<std::string> row{format_double(s)};
    if (target == "auto") {
      if (want_klru) row.push_back(format_double(actual_klru.eval(s)));
      if (want_lru) row.push_back(format_double(actual_lru.eval(s)));
    } else {
      row.push_back(format_double(
          (target == "klru" ? actual_klru : actual_lru).eval(s)));
    }
    for (const auto& curve : predicted) {
      row.push_back(format_double(curve.eval(s)));
    }
    table.add_row(std::move(row));
  }
  if (format == "csv") {
    // The grid goes to stdout machine-parseable; MAEs go to stderr.
    table.print_csv(std::cout);
    for (std::size_t m = 0; m < models.size(); ++m) {
      std::fprintf(stderr, "MAE[%s]: %g\n", models[m].c_str(), maes[m]);
    }
    return 0;
  }
  table.print(std::cout);
  for (std::size_t m = 0; m < models.size(); ++m) {
    std::printf("MAE[%s]: %g\n", models[m].c_str(), maes[m]);
  }
  return 0;
}

/// Maps a typed ingestion failure onto the exit-code contract: everything
/// that means "the input itself is damaged" (including an exhausted
/// bad-record budget) exits 3; environmental failures exit 1.
int exit_code_for(const StatusError& e) {
  switch (e.code()) {
    case StatusCode::kCorruptHeader:
    case StatusCode::kUnsupportedVersion:
    case StatusCode::kTruncated:
    case StatusCode::kBadRecord:
    case StatusCode::kChecksumMismatch:
    case StatusCode::kResourceLimit:
      return 3;
    case StatusCode::kInvalidArgument:
      return 2;
    default:
      return 1;
  }
}

int run(int argc, char** argv) {
  if (argc < 2) {
    print_usage(stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    print_usage(stdout);
    return 0;
  }
  const Options opts(argc - 1, argv + 1);
  // Fault plans arm process-global trigger state and must be installed
  // before any pipeline threads exist, so this happens ahead of command
  // dispatch. The flag wins over the KRR_FAULT_PLAN environment variable
  // (the env form lets CI inject faults without touching command lines).
  std::string fault_plan = opts.get_string("fault-plan", "");
  if (fault_plan.empty()) {
    if (const char* env = std::getenv("KRR_FAULT_PLAN"); env != nullptr) {
      fault_plan = env;
    }
  }
  if (!fault_plan.empty()) {
    if (Status s = faults::arm(fault_plan); !s.is_ok()) {
      usage(s.message());
    }
  }
  if (command == "workloads") return cmd_workloads();
  if (command == "models") return cmd_models(opts);
  if (command == "generate") return cmd_generate(opts);
  if (command == "profile") return cmd_profile(opts);
  if (command == "simulate") return cmd_simulate(opts);
  if (command == "compare") return cmd_compare(opts);
  usage("unknown command: " + command);
}

}  // namespace

int main(int argc, char** argv) {
  // No exception may escape: every failure maps onto the exit contract.
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const StatusError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 1;
  }
}
