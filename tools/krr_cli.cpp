// krr_cli — command-line front end for the library.
//
//   krr_cli workloads
//   krr_cli generate --workload=msr:src1 --n=1000000 --out=trace.bin
//   krr_cli profile  --trace=trace.bin --k=5 [--rate=0.001] [--bytes]
//                    [--strategy=backward|top_down|linear] [--no-correction]
//                    [--out=mrc.csv]
//   krr_cli simulate --trace=trace.bin --policy=klru --k=5 --sizes=20
//   krr_cli compare  --trace=trace.bin --k=5 --sizes=20
//
// Every subcommand also accepts --workload=<spec> --n=<count> in place of
// --trace, generating the trace on the fly (--seed, --footprint,
// --uniform-size configure the generator).

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>
#include <vector>

#include "krr.h"
#include "trace/workload_factory.h"

namespace {

using namespace krr;

[[noreturn]] void usage(const char* error = nullptr) {
  if (error) std::fprintf(stderr, "error: %s\n\n", error);
  std::fprintf(stderr,
               "usage: krr_cli <workloads|generate|profile|simulate|compare> "
               "[--options]\n"
               "  workloads                      list workload specs\n"
               "  generate  --workload= --n= --out=   write a trace file\n"
               "  profile   --trace=|--workload= --k= [--rate=] [--bytes]\n"
               "            [--strategy=] [--no-correction] [--out=]\n"
               "  simulate  --trace=|--workload= --policy=klru|redis|lru\n"
               "            [--k=] [--sizes=]\n"
               "  compare   --trace=|--workload= --k= [--sizes=]\n");
  std::exit(error ? 2 : 0);
}

std::vector<Request> load_input(const Options& opts) {
  if (auto path = opts.get("trace"); path && !path->empty()) {
    return load_trace(*path);
  }
  const std::string spec = opts.get_string("workload", "");
  if (spec.empty()) usage("need --trace=<file> or --workload=<spec>");
  WorkloadFactoryOptions wf;
  wf.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 0));
  wf.uniform_size = static_cast<std::uint32_t>(opts.get_int("uniform-size", 0));
  auto gen = make_workload(spec, wf);
  const auto n = static_cast<std::size_t>(opts.get_int("n", 1000000));
  return materialize(*gen, n);
}

UpdateStrategy parse_strategy(const std::string& name) {
  if (name == "backward") return UpdateStrategy::kBackward;
  if (name == "top_down") return UpdateStrategy::kTopDown;
  if (name == "linear") return UpdateStrategy::kLinear;
  throw std::invalid_argument("unknown strategy: " + name);
}

int cmd_workloads() {
  for (const std::string& spec : known_workload_specs()) {
    std::printf("%s\n", spec.c_str());
  }
  return 0;
}

int cmd_generate(const Options& opts) {
  const std::string out = opts.get_string("out", "");
  if (out.empty()) usage("generate needs --out=<file>");
  const auto trace = load_input(opts);
  if (out.size() > 4 && out.substr(out.size() - 4) == ".csv") {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open " + out);
    write_trace_csv(os, trace);
  } else {
    save_trace(out, trace);
  }
  std::fprintf(stderr, "wrote %zu requests (%zu distinct keys) to %s\n",
               trace.size(), count_distinct(trace), out.c_str());
  return 0;
}

int cmd_profile(const Options& opts) {
  const auto trace = load_input(opts);
  KrrProfilerConfig cfg;
  cfg.k_sample = opts.get_double("k", 5.0);
  cfg.sampling_rate = opts.get_double("rate", 1.0);
  cfg.byte_granularity = opts.has("bytes");
  cfg.apply_correction = !opts.has("no-correction");
  cfg.strategy = parse_strategy(opts.get_string("strategy", "backward"));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  Stopwatch watch;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  const MissRatioCurve mrc = profiler.mrc();
  const double secs = watch.seconds();
  const std::string out = opts.get_string("out", "");
  if (out.empty()) {
    mrc.write_csv(std::cout);
  } else {
    std::ofstream os(out);
    if (!os) throw std::runtime_error("cannot open " + out);
    mrc.write_csv(os);
  }
  std::fprintf(stderr,
               "profiled %zu requests (%zu sampled) in %.3f s; stack depth %zu\n",
               trace.size(), static_cast<std::size_t>(profiler.sampled()), secs,
               static_cast<std::size_t>(profiler.stack_depth()));
  return 0;
}

int cmd_simulate(const Options& opts) {
  const auto trace = load_input(opts);
  const std::string policy = opts.get_string("policy", "klru");
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const bool bytes = opts.has("bytes");
  const auto sizes = bytes ? capacity_grid_bytes(trace, n_sizes)
                           : capacity_grid_objects(trace, n_sizes);
  MissRatioCurve curve;
  if (policy == "klru") {
    curve = sweep_klru(trace, sizes, k);
  } else if (policy == "redis") {
    RedisLruConfig cfg;
    cfg.maxmemory_samples = k;
    curve = sweep_redis(trace, sizes, cfg);
  } else if (policy == "lru") {
    curve = sweep_lru(trace, sizes);
  } else {
    usage("unknown --policy (use klru, redis or lru)");
  }
  curve.write_csv(std::cout);
  return 0;
}

int cmd_compare(const Options& opts) {
  const auto trace = load_input(opts);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const auto sizes = capacity_grid_objects(trace, n_sizes);
  const MissRatioCurve actual = sweep_klru(trace, sizes, k);
  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  const MissRatioCurve predicted = profiler.mrc();
  Table table({"size", "simulated", "krr_predicted", "abs_error"});
  for (double s : sizes) {
    const double a = actual.eval(s);
    const double p = predicted.eval(s);
    table.add(s, a, p, std::abs(a - p));
  }
  table.print(std::cout);
  std::printf("MAE: %g\n", predicted.mae(actual, sizes));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string command = argv[1];
  const Options opts(argc - 1, argv + 1);
  try {
    if (command == "workloads") return cmd_workloads();
    if (command == "generate") return cmd_generate(opts);
    if (command == "profile") return cmd_profile(opts);
    if (command == "simulate") return cmd_simulate(opts);
    if (command == "compare") return cmd_compare(opts);
    if (command == "help" || command == "--help") usage();
    usage(("unknown command: " + command).c_str());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
