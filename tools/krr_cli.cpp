// krr_cli — command-line front end for the library.
//
//   krr_cli workloads
//   krr_cli generate --workload=msr:src1 --n=1000000 --out=trace.bin
//   krr_cli profile  --trace=trace.bin --k=5 [--rate=0.001] [--bytes]
//                    [--strategy=backward|top_down|linear] [--no-correction]
//                    [--max-stack-mb=64] [--out=mrc.csv]
//                    [--threads=N] [--shards=S]
//                    [--metrics-out=FILE] [--format=json|table]
//                    [--progress[=SECS]]
//
// Parallelism: --threads=N (default 1) profiles on N shard-worker threads
// fed from the reader thread; --shards=S (default: N) controls the hash
// partition count independently of the thread count, and the MRC depends
// only on S, never on N. The default --threads=1 --shards=1 runs the
// serial profiler unchanged (bit-identical output).
//   krr_cli simulate --trace=trace.bin --policy=klru --k=5 --sizes=20
//   krr_cli compare  --trace=trace.bin --k=5 --sizes=20
//
// Observability: --metrics-out writes the full telemetry snapshot
// (counters, log-scale histograms, phase timings, run report) as JSON (or
// a human table with --format=table); --metrics-out=- sends it to stdout
// and suppresses the MRC CSV unless --out= redirects it, so stdout stays
// machine-parseable. --progress prints a heartbeat line to stderr every
// SECS seconds (default 2) plus a final summary.
//
// Every subcommand also accepts --workload=<spec> --n=<count> in place of
// --trace, generating the trace on the fly (--seed, --footprint,
// --uniform-size configure the generator).
//
// Trace ingestion is fault tolerant by default: damaged records and blocks
// are skipped and counted (up to --max-bad-records, default 1024), and the
// skip/corruption accounting is printed to stderr. --strict fails fast on
// the first sign of corruption instead.
//
// Exit codes (stable contract):
//   0  success
//   1  runtime failure (I/O error, out of resources, internal error)
//   2  usage error (unknown command/flag value, bad workload spec)
//   3  corrupt input rejected (strict mode, or the --max-bad-records
//      budget was exhausted in the default skip mode)

#include <cmath>
#include <cstdio>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "krr.h"
#include "trace/workload_factory.h"

namespace {

using namespace krr;

class UsageError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

void print_usage(std::FILE* to) {
  std::fprintf(to,
               "usage: krr_cli <workloads|generate|profile|simulate|compare> "
               "[--options]\n"
               "  workloads                      list workload specs\n"
               "  generate  --workload= --n= --out=   write a trace file\n"
               "  profile   --trace=|--workload= --k= [--rate=] [--bytes]\n"
               "            [--strategy=] [--no-correction] [--max-stack-mb=]\n"
               "            [--threads=N] [--shards=S]\n"
               "            [--out=] [--metrics-out=] [--format=json|table]\n"
               "            [--progress[=secs]]\n"
               "  simulate  --trace=|--workload= --policy=klru|redis|lru\n"
               "            [--k=] [--sizes=]\n"
               "  compare   --trace=|--workload= --k= [--sizes=]\n"
               "ingestion:  [--strict] [--recovery=strict|skip|best-effort]\n"
               "            [--max-bad-records=N] [--format=v1|v2]\n"
               "exit codes: 0 ok, 1 runtime failure, 2 usage,\n"
               "            3 corrupt input (strict mode or bad-record "
               "budget exhausted)\n");
}

[[noreturn]] void usage(const std::string& error) { throw UsageError(error); }

TraceReaderOptions reader_options(const Options& opts) {
  TraceReaderOptions ro;
  ro.policy = RecoveryPolicy::kSkipAndCount;
  const std::string recovery = opts.get_string("recovery", "");
  if (!recovery.empty()) {
    if (recovery == "strict") {
      ro.policy = RecoveryPolicy::kStrict;
    } else if (recovery == "skip") {
      ro.policy = RecoveryPolicy::kSkipAndCount;
    } else if (recovery == "best-effort") {
      ro.policy = RecoveryPolicy::kBestEffort;
    } else {
      usage("unknown --recovery (use strict, skip or best-effort)");
    }
  }
  if (opts.has("strict")) ro.policy = RecoveryPolicy::kStrict;
  const auto budget = opts.get_int("max-bad-records", 1024);
  if (budget < 0) usage("--max-bad-records must be >= 0");
  ro.max_bad_records = static_cast<std::uint64_t>(budget);
  return ro;
}

void report_ingest(const TraceReadReport& report) {
  if (report.records_skipped == 0 && report.checksum_failures == 0 &&
      !report.truncated_tail) {
    return;
  }
  std::fprintf(stderr,
               "ingest: %llu records read, %llu skipped, %llu checksum "
               "failures%s\n",
               static_cast<unsigned long long>(report.records_read),
               static_cast<unsigned long long>(report.records_skipped),
               static_cast<unsigned long long>(report.checksum_failures),
               report.truncated_tail ? ", truncated tail" : "");
}

std::vector<Request> load_input(const Options& opts, TraceReadReport* ingest) {
  // Validate the recovery flags even when the input is generated rather than
  // read from disk — a typo'd --recovery= must be a usage error either way.
  const TraceReaderOptions ro = reader_options(opts);
  if (auto path = opts.get("trace"); path && !path->empty()) {
    TraceReadReport report;
    // generate --out=x.csv writes CSV, so --trace=x.csv reads it back; the
    // recovery policy applies to malformed rows just like binary damage.
    if (path->size() > 4 && path->substr(path->size() - 4) == ".csv") {
      std::ifstream is(*path);
      if (!is) throw StatusError(io_error("cannot open for read: " + *path));
      auto csv = read_trace_csv(is, ro, &report);
      report_ingest(report);
      if (!csv.is_ok()) throw StatusError(csv.status());
      if (ingest) *ingest = report;
      return std::move(csv).value();
    }
    auto result = load_trace_file(*path, ro, &report);
    report_ingest(report);
    if (!result.is_ok()) throw StatusError(result.status());
    if (ingest) *ingest = report;
    return std::move(result).value();
  }
  const std::string spec = opts.get_string("workload", "");
  if (spec.empty()) usage("need --trace=<file> or --workload=<spec>");
  WorkloadFactoryOptions wf;
  wf.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  wf.footprint = static_cast<std::uint64_t>(opts.get_int("footprint", 0));
  wf.uniform_size = static_cast<std::uint32_t>(opts.get_int("uniform-size", 0));
  auto gen = try_make_workload(spec, wf);
  if (!gen.is_ok()) usage(gen.status().message());
  const auto n = static_cast<std::size_t>(opts.get_int("n", 1000000));
  return materialize(**gen, n);
}

UpdateStrategy parse_strategy(const std::string& name) {
  if (name == "backward") return UpdateStrategy::kBackward;
  if (name == "top_down") return UpdateStrategy::kTopDown;
  if (name == "linear") return UpdateStrategy::kLinear;
  usage("unknown strategy: " + name);
}

int cmd_workloads() {
  for (const std::string& spec : known_workload_specs()) {
    std::printf("%s\n", spec.c_str());
  }
  return 0;
}

int cmd_generate(const Options& opts) {
  const std::string out = opts.get_string("out", "");
  if (out.empty()) usage("generate needs --out=<file>");
  const std::string format = opts.get_string("format", "v2");
  if (format != "v1" && format != "v2") usage("unknown --format (use v1 or v2)");
  const auto trace = load_input(opts, nullptr);
  if (out.size() > 4 && out.substr(out.size() - 4) == ".csv") {
    std::ofstream os(out);
    if (!os) throw StatusError(io_error("cannot open " + out));
    write_trace_csv(os, trace);
  } else {
    save_trace(out, trace,
               format == "v1" ? TraceFormat::kV1 : TraceFormat::kV2);
  }
  std::fprintf(stderr, "wrote %zu requests (%zu distinct keys) to %s\n",
               trace.size(), count_distinct(trace), out.c_str());
  return 0;
}

/// The profiler's instantaneous state as one heartbeat snapshot.
obs::HeartbeatSnapshot snapshot_of(const KrrProfiler& profiler) {
  obs::HeartbeatSnapshot s;
  s.records = profiler.processed();
  s.sampled = profiler.sampled();
  s.stack_depth = profiler.stack_depth();
  s.resident_bytes = profiler.space_overhead_bytes();
  s.sampling_rate = profiler.current_sampling_rate();
  s.degradation_events = profiler.degradation_events();
  return s;
}

/// Writes the telemetry snapshot. JSON is the machine format (registry
/// sections + run_report, same numbers the library reports); table is the
/// human format.
void write_metrics(std::ostream& os, const std::string& format,
                   const obs::MetricsRegistry& registry, const RunReport& report) {
  if (format == "json") {
    obs::Json root = registry.to_json();
    root.set("instrumentation_compiled_in", obs::Json(obs::kHotPathInstrumentation));
    root.set("run_report", to_json(report));
    root.dump(os, 0);
    os << '\n';
    return;
  }
  registry.write_table(os);
  os << "-- run report --\n";
  const obs::Json report_json = to_json(report);
  for (const auto& [name, value] : report_json.members()) {
    os << "  " << name << "  " << value.dump() << '\n';
  }
}

int cmd_profile(const Options& opts) {
  const std::string metrics_out = opts.get_string("metrics-out", "");
  const std::string metrics_format = opts.get_string("format", "json");
  if (metrics_format != "json" && metrics_format != "table") {
    usage("unknown --format for profile (use json or table)");
  }
  const bool want_metrics = !metrics_out.empty() || opts.has("progress");

  double phase_load = 0.0, phase_profile = 0.0, phase_mrc = 0.0,
         phase_output = 0.0;
  TraceReadReport ingest;
  std::vector<Request> trace;
  {
    ScopedTimer timer(phase_load);
    trace = load_input(opts, &ingest);
  }
  KrrProfilerConfig cfg;
  cfg.k_sample = opts.get_double("k", 5.0);
  cfg.sampling_rate = opts.get_double("rate", 1.0);
  cfg.byte_granularity = opts.has("bytes");
  cfg.apply_correction = !opts.has("no-correction");
  cfg.strategy = parse_strategy(opts.get_string("strategy", "backward"));
  cfg.seed = static_cast<std::uint64_t>(opts.get_int("seed", 1));
  const auto max_stack_mb = opts.get_int("max-stack-mb", 0);
  if (max_stack_mb < 0) usage("--max-stack-mb must be >= 0");
  cfg.max_stack_bytes = static_cast<std::uint64_t>(max_stack_mb) << 20;
  const auto threads_opt = opts.get_int("threads", 1);
  if (threads_opt < 1) usage("--threads must be >= 1");
  const auto shards_opt = opts.get_int("shards", 0);
  if (shards_opt < 0) usage("--shards must be >= 1");
  const auto threads = static_cast<unsigned>(threads_opt);
  // --shards defaults to one shard per worker thread.
  const auto shards = shards_opt == 0 ? static_cast<std::uint32_t>(threads)
                                      : static_cast<std::uint32_t>(shards_opt);
  const bool sharded_mode = threads > 1 || shards > 1;

  obs::MetricsRegistry registry;
  std::optional<obs::PipelineMetrics> metrics;
  if (want_metrics) metrics.emplace(registry);
  std::optional<obs::Heartbeat> heartbeat;
  if (opts.has("progress")) {
    const double interval = opts.get_double("progress", 2.0);
    if (interval < 0) usage("--progress must be >= 0 seconds");
    heartbeat.emplace(interval, std::cerr);
  }

  MissRatioCurve mrc;
  RunReport report;
  std::uint64_t sampled = 0;
  std::uint64_t stack_depth = 0;
  if (!sharded_mode) {
    KrrProfiler profiler(cfg);
    if (want_metrics) profiler.attach_metrics(&*metrics);
    {
      ScopedTimer timer(phase_profile);
      if (heartbeat) {
        for (const Request& r : trace) {
          profiler.access(r);
          heartbeat->tick([&] {
            profiler.refresh_metrics_gauges();
            return snapshot_of(profiler);
          });
        }
        heartbeat->finish(snapshot_of(profiler));
      } else {
        for (const Request& r : trace) profiler.access(r);
      }
    }
    {
      ScopedTimer timer(phase_mrc);
      mrc = profiler.mrc();
    }
    report = profiler.run_report(&ingest);
    if (want_metrics) profiler.refresh_metrics_gauges();
    sampled = profiler.sampled();
    stack_depth = profiler.stack_depth();
  } else {
    ShardedKrrProfilerConfig scfg;
    scfg.base = cfg;
    scfg.shards = shards;
    scfg.threads = threads;
    ShardedKrrProfiler profiler(scfg);
    if (want_metrics) profiler.attach_metrics(&*metrics);
    {
      ScopedTimer timer(phase_profile);
      if (heartbeat) {
        for (const Request& r : trace) {
          profiler.access(r);
          heartbeat->tick([&] { return profiler.snapshot(); });
        }
      } else {
        for (const Request& r : trace) profiler.access(r);
      }
      profiler.finish();
      if (heartbeat) heartbeat->finish(profiler.snapshot());
    }
    {
      ScopedTimer timer(phase_mrc);
      mrc = profiler.mrc();
    }
    report = profiler.run_report(&ingest);
    if (want_metrics) profiler.export_shard_gauges(registry);
    sampled = profiler.sampled();
    stack_depth = profiler.stack_depth();
    if (profiler.producer_stall_seconds() > 0.01) {
      std::fprintf(stderr, "fan-out backpressure: %.3f s producer stall\n",
                   profiler.producer_stall_seconds());
    }
  }
  const double secs = phase_profile + phase_mrc;
  const std::string out = opts.get_string("out", "");
  // --metrics-out=- claims stdout for the snapshot: without an explicit
  // --out the MRC CSV is skipped so stdout stays machine-parseable.
  const bool metrics_claim_stdout = metrics_out == "-";
  {
    ScopedTimer timer(phase_output);
    if (out.empty()) {
      if (!metrics_claim_stdout) mrc.write_csv(std::cout);
    } else {
      std::ofstream os(out);
      if (!os) throw StatusError(io_error("cannot open " + out));
      mrc.write_csv(os);
    }
  }
  if (want_metrics) {
    fold_ingest_metrics(ingest, registry);
    registry.gauge("phase.load_seconds").set(phase_load);
    registry.gauge("phase.profile_seconds").set(phase_profile);
    registry.gauge("phase.mrc_seconds").set(phase_mrc);
    registry.gauge("phase.output_seconds").set(phase_output);
    registry.gauge("phase.total_seconds")
        .set(phase_load + phase_profile + phase_mrc + phase_output);
    if (!metrics_out.empty()) {
      if (metrics_out == "-") {
        write_metrics(std::cout, metrics_format, registry, report);
      } else {
        std::ofstream os(metrics_out);
        if (!os) throw StatusError(io_error("cannot open " + metrics_out));
        write_metrics(os, metrics_format, registry, report);
      }
    }
  }
  if (sharded_mode) {
    std::fprintf(stderr,
                 "profiled %zu requests (%zu sampled) in %.3f s across %u "
                 "shards on %u threads; stack depth %zu\n",
                 trace.size(), static_cast<std::size_t>(sampled), secs, shards,
                 threads, static_cast<std::size_t>(stack_depth));
  } else {
    std::fprintf(stderr,
                 "profiled %zu requests (%zu sampled) in %.3f s; stack depth %zu\n",
                 trace.size(), static_cast<std::size_t>(sampled), secs,
                 static_cast<std::size_t>(stack_depth));
  }
  if (report.degradation_events > 0) {
    std::fprintf(stderr,
                 "degraded sampling rate %llu time(s) to stay under "
                 "--max-stack-mb=%lld; final rate %g\n",
                 static_cast<unsigned long long>(report.degradation_events),
                 static_cast<long long>(max_stack_mb),
                 report.final_sampling_rate);
  }
  return 0;
}

int cmd_simulate(const Options& opts) {
  const auto trace = load_input(opts, nullptr);
  const std::string policy = opts.get_string("policy", "klru");
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const bool bytes = opts.has("bytes");
  const auto sizes = bytes ? capacity_grid_bytes(trace, n_sizes)
                           : capacity_grid_objects(trace, n_sizes);
  MissRatioCurve curve;
  if (policy == "klru") {
    curve = sweep_klru(trace, sizes, k);
  } else if (policy == "redis") {
    RedisLruConfig cfg;
    cfg.maxmemory_samples = k;
    curve = sweep_redis(trace, sizes, cfg);
  } else if (policy == "lru") {
    curve = sweep_lru(trace, sizes);
  } else {
    usage("unknown --policy (use klru, redis or lru)");
  }
  curve.write_csv(std::cout);
  return 0;
}

int cmd_compare(const Options& opts) {
  const auto trace = load_input(opts, nullptr);
  const auto k = static_cast<std::uint32_t>(opts.get_int("k", 5));
  const auto n_sizes = static_cast<std::size_t>(opts.get_int("sizes", 20));
  const auto sizes = capacity_grid_objects(trace, n_sizes);
  const MissRatioCurve actual = sweep_klru(trace, sizes, k);
  KrrProfilerConfig cfg;
  cfg.k_sample = k;
  KrrProfiler profiler(cfg);
  for (const Request& r : trace) profiler.access(r);
  const MissRatioCurve predicted = profiler.mrc();
  Table table({"size", "simulated", "krr_predicted", "abs_error"});
  for (double s : sizes) {
    const double a = actual.eval(s);
    const double p = predicted.eval(s);
    table.add(s, a, p, std::abs(a - p));
  }
  table.print(std::cout);
  std::printf("MAE: %g\n", predicted.mae(actual, sizes));
  return 0;
}

/// Maps a typed ingestion failure onto the exit-code contract: everything
/// that means "the input itself is damaged" (including an exhausted
/// bad-record budget) exits 3; environmental failures exit 1.
int exit_code_for(const StatusError& e) {
  switch (e.code()) {
    case StatusCode::kCorruptHeader:
    case StatusCode::kUnsupportedVersion:
    case StatusCode::kTruncated:
    case StatusCode::kBadRecord:
    case StatusCode::kChecksumMismatch:
    case StatusCode::kResourceLimit:
      return 3;
    case StatusCode::kInvalidArgument:
      return 2;
    default:
      return 1;
  }
}

int run(int argc, char** argv) {
  if (argc < 2) {
    print_usage(stderr);
    return 2;
  }
  const std::string command = argv[1];
  if (command == "help" || command == "--help") {
    print_usage(stdout);
    return 0;
  }
  const Options opts(argc - 1, argv + 1);
  if (command == "workloads") return cmd_workloads();
  if (command == "generate") return cmd_generate(opts);
  if (command == "profile") return cmd_profile(opts);
  if (command == "simulate") return cmd_simulate(opts);
  if (command == "compare") return cmd_compare(opts);
  usage("unknown command: " + command);
}

}  // namespace

int main(int argc, char** argv) {
  // No exception may escape: every failure maps onto the exit contract.
  try {
    return run(argc, argv);
  } catch (const UsageError& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const StatusError& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return exit_code_for(e);
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "error: %s\n\n", e.what());
    print_usage(stderr);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  } catch (...) {
    std::fprintf(stderr, "error: unknown failure\n");
    return 1;
  }
}
