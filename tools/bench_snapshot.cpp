// bench_snapshot — records the repo's perf baseline as a checked-in JSON
// artifact (BENCH_pr<N>.json), so perf PRs have a number to beat and a
// regression is a diff, not an anecdote.
//
// Everything runs in-process (no shelling out to bench binaries) and is
// deliberately laptop-sized: a full run takes ~1 minute at the default
// scale. KRR_BENCH_SCALE multiplies trace lengths as usual.
//
//   bench_snapshot [--out=BENCH_pr9.json] [--pr=9] [--repeats=3]

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>
#include <thread>

#include "../bench/bench_common.h"

namespace {

using namespace krr;
using namespace krrbench;

double profile_seconds(const std::vector<Request>& trace, double k, double rate,
                       UpdateStrategy strategy, obs::PipelineMetrics* metrics,
                       int repeats) {
  return median_seconds(repeats, [&] {
    KrrProfilerConfig cfg;
    cfg.k_sample = k;
    cfg.sampling_rate = rate;
    cfg.strategy = strategy;
    cfg.seed = 7;
    KrrProfiler profiler(cfg);
    if (metrics != nullptr) profiler.attach_metrics(metrics);
    for (const Request& r : trace) profiler.access(r);
  });
}

std::string utc_timestamp() {
  char buf[32];
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts(argc, argv);
  const std::string out = opts.get_string("out", "BENCH_pr9.json");
  const auto pr = opts.get_int("pr", 9);
  const int repeats = static_cast<int>(opts.get_int("repeats", 3));

  obs::Json root = obs::Json::object();
  root.set("schema", obs::Json("krr-bench-snapshot"));
  root.set("schema_version", obs::Json(std::uint64_t{1}));
  root.set("pr", obs::Json(static_cast<std::int64_t>(pr)));
  root.set("generated_utc", obs::Json(utc_timestamp()));
  root.set("bench_scale", obs::Json(bench_scale()));
  root.set("instrumentation_compiled_in",
           obs::Json(obs::kHotPathInstrumentation));
  root.set("hardware_concurrency",
           obs::Json(std::uint64_t{std::thread::hardware_concurrency()}));

  // 1. End-to-end profile throughput across representative workloads.
  struct Case {
    const char* name;
    std::vector<Request> trace;
    double rate;
  };
  const auto n_zipf = static_cast<std::size_t>(scaled(1000000));
  ZipfianGenerator zipf_hot(100000, 0.9, 21, /*scrambled=*/true);
  ZipfianGenerator zipf_flat(1000000, 0.7, 22, /*scrambled=*/true);
  std::vector<Case> cases;
  cases.push_back({"zipf:0.9 footprint=100k", materialize(zipf_hot, n_zipf), 1.0});
  cases.push_back(
      {"zipf:0.7 footprint=1M R=0.01", materialize(zipf_flat, n_zipf), 0.01});
  cases.push_back(
      {"msr:web", make_msr("web", n_zipf, 200000, 1).trace, 1.0});

  obs::Json throughput = obs::Json::array();
  for (const Case& c : cases) {
    const double secs = profile_seconds(c.trace, 5.0, c.rate,
                                        UpdateStrategy::kBackward, nullptr,
                                        repeats);
    obs::Json row = obs::Json::object();
    row.set("workload", obs::Json(c.name));
    row.set("n", obs::Json(static_cast<std::uint64_t>(c.trace.size())));
    row.set("k", obs::Json(5.0));
    row.set("rate", obs::Json(c.rate));
    row.set("seconds", obs::Json(secs));
    row.set("mrec_per_s",
            obs::Json(static_cast<double>(c.trace.size()) / secs / 1e6));
    throughput.push_back(std::move(row));
    std::printf("throughput %-28s %.3f s (%.3f Mrec/s)\n", c.name, secs,
                static_cast<double>(c.trace.size()) / secs / 1e6);
  }
  root.set("profile_throughput", std::move(throughput));

  // 2. Obs layer self-cost on the hot Zipf trace (the bench_smoke gate's
  // quantity, recorded so the budget has a baseline).
  {
    obs::MetricsRegistry registry;
    obs::PipelineMetrics metrics(registry);
    const std::vector<Request>& trace = cases[0].trace;
    const double detached = profile_seconds(trace, 5.0, 1.0,
                                            UpdateStrategy::kBackward, nullptr,
                                            repeats);
    const double attached = profile_seconds(trace, 5.0, 1.0,
                                            UpdateStrategy::kBackward, &metrics,
                                            repeats);
    obs::Json row = obs::Json::object();
    row.set("trace", obs::Json(cases[0].name));
    row.set("detached_seconds", obs::Json(detached));
    row.set("attached_seconds", obs::Json(attached));
    row.set("overhead_pct", obs::Json((attached / detached - 1.0) * 100.0));
    root.set("obs_overhead", std::move(row));
    std::printf("obs overhead: %.2f%%\n", (attached / detached - 1.0) * 100.0);
  }

  // 3. Update-strategy cost (Fig. 5.4's quantity, smaller trace so the
  // linear strategy finishes).
  {
    const auto n_small = static_cast<std::size_t>(scaled(200000));
    ZipfianGenerator gen(20000, 0.9, 23, /*scrambled=*/true);
    const std::vector<Request> trace = materialize(gen, n_small);
    obs::Json rows = obs::Json::array();
    const struct {
      const char* name;
      UpdateStrategy strategy;
    } strategies[] = {{"backward", UpdateStrategy::kBackward},
                      {"top_down", UpdateStrategy::kTopDown},
                      {"linear", UpdateStrategy::kLinear}};
    for (const auto& s : strategies) {
      const double secs =
          profile_seconds(trace, 5.0, 1.0, s.strategy, nullptr, repeats);
      obs::Json row = obs::Json::object();
      row.set("strategy", obs::Json(s.name));
      row.set("n", obs::Json(static_cast<std::uint64_t>(trace.size())));
      row.set("ns_per_access",
              obs::Json(secs * 1e9 / static_cast<double>(trace.size())));
      rows.push_back(std::move(row));
      std::printf("strategy %-9s %.0f ns/access\n", s.name,
                  secs * 1e9 / static_cast<double>(trace.size()));
    }
    root.set("update_strategies", std::move(rows));
  }

  // 4. Space accounting (§5.6): bytes per tracked object at full rate.
  {
    KrrProfilerConfig cfg;
    cfg.k_sample = 5.0;
    KrrProfiler profiler(cfg);
    for (const Request& r : cases[0].trace) profiler.access(r);
    obs::Json row = obs::Json::object();
    row.set("stack_depth", obs::Json(profiler.stack_depth()));
    row.set("space_overhead_bytes", obs::Json(profiler.space_overhead_bytes()));
    row.set("bytes_per_object",
            obs::Json(static_cast<double>(profiler.space_overhead_bytes()) /
                      static_cast<double>(profiler.stack_depth())));
    root.set("space", std::move(row));
  }

  // 5. Sharded-pipeline scaling on the hot Zipf trace: speedup of
  // ShardedKrrProfiler over the serial baseline per thread count, and the
  // merged MRC's MAE against serial (the accuracy cost of sharding).
  // Numbers are honest to the machine that ran them — see
  // hardware_concurrency above; a 1-core runner records ~1x.
  {
    const std::vector<Request>& trace = cases[0].trace;
    const double serial_secs = profile_seconds(
        trace, 5.0, 1.0, UpdateStrategy::kBackward, nullptr, repeats);
    MissRatioCurve serial_mrc;
    {
      KrrProfilerConfig cfg;
      cfg.k_sample = 5.0;
      cfg.seed = 7;
      KrrProfiler profiler(cfg);
      for (const Request& r : trace) profiler.access(r);
      serial_mrc = profiler.mrc();
    }
    const std::vector<double> sizes =
        evenly_spaced_sizes(serial_mrc.max_size(), 40);
    obs::Json rows = obs::Json::array();
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
      MissRatioCurve merged;
      const double secs = median_seconds(repeats, [&] {
        ShardedKrrProfilerConfig cfg;
        cfg.base.k_sample = 5.0;
        cfg.base.seed = 7;
        cfg.shards = 8;
        cfg.threads = threads;
        ShardedKrrProfiler profiler(cfg);
        for (const Request& r : trace) profiler.access(r);
        profiler.finish();
        merged = profiler.mrc();
      });
      obs::Json row = obs::Json::object();
      row.set("model", obs::Json("krr"));
      row.set("threads", obs::Json(std::uint64_t{threads}));
      row.set("shards", obs::Json(std::uint64_t{8}));
      row.set("seconds", obs::Json(secs));
      row.set("mrec_per_s",
              obs::Json(static_cast<double>(trace.size()) / secs / 1e6));
      row.set("speedup_vs_serial", obs::Json(serial_secs / secs));
      row.set("mae_vs_serial", obs::Json(serial_mrc.mae(merged, sizes)));
      rows.push_back(std::move(row));
      std::printf("sharded threads=%u shards=8  %.3f s (%.2fx, mae %.5f)\n",
                  threads, secs, serial_secs / secs,
                  serial_mrc.mae(merged, sizes));
    }

    // One generic-runner row (PR 8): the SHARDS model through the registry's
    // shards_sharded adapter, against its own serial baseline — pins the
    // fan-out overhead of ShardedEstimator next to the krr pipeline's.
    {
      auto& registry = EstimatorRegistry::instance();
      const auto run_registry = [&](const char* name,
                                    bool sharded) -> std::pair<double,
                                                               MissRatioCurve> {
        MissRatioCurve curve;
        const double secs = median_seconds(repeats, [&] {
          EstimatorOptions options;
          options.set("seed", "7");
          if (sharded) {
            options.set("shards", "8");
            options.set("threads", "4");
          }
          auto est = registry.create(name, options);
          if (!est.is_ok()) {
            std::fprintf(stderr, "%s: %s\n", name,
                         est.status().message().c_str());
            std::exit(1);
          }
          for (const Request& r : trace) (*est)->access(r);
          (*est)->finish();
          curve = (*est)->mrc({});
        });
        return {secs, curve};
      };
      const auto [shards_serial_secs, shards_serial_mrc] =
          run_registry("shards", false);
      const auto [shards_secs, shards_mrc] =
          run_registry("shards_sharded", true);
      const std::vector<double> shards_sizes =
          evenly_spaced_sizes(shards_serial_mrc.max_size(), 40);
      obs::Json row = obs::Json::object();
      row.set("model", obs::Json("shards"));
      row.set("threads", obs::Json(std::uint64_t{4}));
      row.set("shards", obs::Json(std::uint64_t{8}));
      row.set("seconds", obs::Json(shards_secs));
      row.set("mrec_per_s",
              obs::Json(static_cast<double>(trace.size()) / shards_secs / 1e6));
      row.set("speedup_vs_serial", obs::Json(shards_serial_secs / shards_secs));
      row.set("mae_vs_serial",
              obs::Json(shards_serial_mrc.mae(shards_mrc, shards_sizes)));
      rows.push_back(std::move(row));
      std::printf(
          "sharded model=shards threads=4 shards=8  %.3f s (%.2fx, mae %.5f)\n",
          shards_secs, shards_serial_secs / shards_secs,
          shards_serial_mrc.mae(shards_mrc, shards_sizes));
    }
    obs::Json section = obs::Json::object();
    section.set("workload", obs::Json(cases[0].name));
    section.set("serial_seconds", obs::Json(serial_secs));
    section.set("rows", std::move(rows));
    root.set("parallel_scaling", std::move(section));
  }

  // 6. Model zoo (the estimator registry, PR 4): per-model one-pass wall
  // time and MAE against the simulated K-LRU cache on a medium Zipf trace.
  // Gives every registered estimator a recorded perf+accuracy baseline;
  // reference_oracle models are skipped (O(M) per access).
  {
    const auto n_zoo = static_cast<std::size_t>(scaled(200000));
    ZipfianGenerator gen(20000, 0.9, 24, /*scrambled=*/true);
    const std::vector<Request> trace = materialize(gen, n_zoo);
    const auto sizes = capacity_grid_objects(trace, 20);
    const MissRatioCurve klru_truth = sweep_klru(trace, sizes, 5, true, 33);
    auto& registry = EstimatorRegistry::instance();
    obs::Json rows = obs::Json::array();
    for (const EstimatorInfo& info : registry.list()) {
      if (info.caps.reference_oracle) continue;
      MissRatioCurve curve;
      const double secs = median_seconds(repeats, [&] {
        EstimatorOptions options;
        options.set("k", "5");
        auto est = registry.create(info.name, options);
        if (!est.is_ok()) {
          std::fprintf(stderr, "%s: %s\n", info.name.c_str(),
                       est.status().message().c_str());
          std::exit(1);
        }
        for (const Request& r : trace) (*est)->access(r);
        (*est)->finish();
        curve = (*est)->mrc(sizes);
      });
      obs::Json row = obs::Json::object();
      row.set("model", obs::Json(info.name));
      row.set("policy", obs::Json(info.policy));
      row.set("models_klru", obs::Json(info.caps.models_klru));
      row.set("seconds", obs::Json(secs));
      row.set("mrec_per_s",
              obs::Json(static_cast<double>(trace.size()) / secs / 1e6));
      row.set("mae_vs_klru", obs::Json(curve.mae(klru_truth, sizes)));
      rows.push_back(std::move(row));
      std::printf("model_zoo %-14s %.3f s (mae vs K-LRU %.5f)\n",
                  info.name.c_str(), secs, curve.mae(klru_truth, sizes));
    }
    obs::Json section = obs::Json::object();
    section.set("workload", obs::Json("zipf:0.9 footprint=20k"));
    section.set("n", obs::Json(static_cast<std::uint64_t>(trace.size())));
    section.set("k", obs::Json(5.0));
    section.set("rows", std::move(rows));
    root.set("model_zoo", std::move(section));
  }

  // 7. Run-lifecycle governance (PR 6): what the governor's limbs cost on
  // the krr model. (a) a governed run under a memory budget tight enough
  // to force degradation, against the ungoverned baseline; (b) checkpoint
  // save/load round-trip time and snapshot size mid-run; (c) a governed
  // run with a checkpoint cadence, so the stride-gated checkpoint limb has
  // a recorded cost too.
  {
    const auto n_gov = static_cast<std::size_t>(scaled(200000));
    ZipfianGenerator gen(20000, 0.9, 25, /*scrambled=*/true);
    const std::vector<Request> trace = materialize(gen, n_gov);
    auto& registry = EstimatorRegistry::instance();
    const auto make_krr = [&registry]() {
      EstimatorOptions options;
      options.set("k", "5");
      auto est = registry.create("krr", options);
      if (!est.is_ok()) {
        std::fprintf(stderr, "krr: %s\n", est.status().message().c_str());
        std::exit(1);
      }
      return std::move(*est);
    };

    // Ungoverned baseline, and the peak footprint the budget is set from.
    std::uint64_t full_bytes = 0;
    const double ungoverned = median_seconds(repeats, [&] {
      auto est = make_krr();
      for (const Request& r : trace) est->access(r);
      est->finish();
      full_bytes = est->space_overhead_bytes();
    });

    // Governed under half the ungoverned footprint: forces real degrade
    // steps so the per-check and per-step costs are measured, not idle.
    const std::uint64_t budget = full_bytes / 2;
    GovernanceReport gov_report;
    const double governed = median_seconds(repeats, [&] {
      auto est = make_krr();
      RunGovernorConfig gcfg;
      gcfg.max_stack_bytes = budget;
      RunGovernor governor(gcfg, est.get());
      for (const Request& r : trace) {
        est->access(r);
        if (!governor.on_access()) break;
      }
      governor.finalize();
      est->finish();
      gov_report = governor.report();
    });

    // Checkpoint round trip at the halfway point of the run.
    auto ckpt_est = make_krr();
    for (std::size_t i = 0; i < trace.size() / 2; ++i)
      ckpt_est->access(trace[i]);
    std::string payload;
    const double save_secs = median_seconds(repeats, [&] {
      payload.clear();
      const Status s = ckpt_est->save_state(&payload);
      if (!s.is_ok()) {
        std::fprintf(stderr, "save_state: %s\n", s.message().c_str());
        std::exit(1);
      }
    });
    auto restored = make_krr();
    const double load_secs = median_seconds(repeats, [&] {
      const Status s = restored->load_state(payload);
      if (!s.is_ok()) {
        std::fprintf(stderr, "load_state: %s\n", s.message().c_str());
        std::exit(1);
      }
    });

    // Governed run with a checkpoint cadence (4 snapshots across the run);
    // the report's checkpoint_seconds is the limb's total in-run cost.
    GovernanceReport ckpt_report;
    const double governed_ckpt = median_seconds(repeats, [&] {
      auto est = make_krr();
      RunGovernorConfig gcfg;
      gcfg.checkpoint_every = trace.size() / 4;
      gcfg.checkpoint_fn =
          [&est](std::uint64_t) -> StatusOr<std::uint64_t> {
        std::string snapshot;
        const Status s = est->save_state(&snapshot);
        if (!s.is_ok()) return s;
        return static_cast<std::uint64_t>(snapshot.size());
      };
      RunGovernor governor(gcfg, est.get());
      for (const Request& r : trace) {
        est->access(r);
        if (!governor.on_access()) break;
      }
      governor.finalize();
      est->finish();
      ckpt_report = governor.report();
    });

    obs::Json section = obs::Json::object();
    section.set("workload", obs::Json("zipf:0.9 footprint=20k"));
    section.set("model", obs::Json("krr"));
    section.set("n", obs::Json(static_cast<std::uint64_t>(trace.size())));
    section.set("ungoverned_seconds", obs::Json(ungoverned));
    section.set("governed_seconds", obs::Json(governed));
    section.set("governed_overhead_pct",
                obs::Json((governed / ungoverned - 1.0) * 100.0));
    section.set("budget_bytes", obs::Json(budget));
    section.set("checks", obs::Json(gov_report.checks));
    section.set("degrade_steps", obs::Json(gov_report.degrade_steps));
    section.set("peak_space_bytes", obs::Json(gov_report.peak_space_bytes));
    section.set("budget_exhausted", obs::Json(gov_report.budget_exhausted));
    obs::Json ckpt = obs::Json::object();
    ckpt.set("payload_bytes",
             obs::Json(static_cast<std::uint64_t>(payload.size())));
    ckpt.set("save_seconds", obs::Json(save_secs));
    ckpt.set("load_seconds", obs::Json(load_secs));
    ckpt.set("governed_seconds", obs::Json(governed_ckpt));
    ckpt.set("checkpoints_written",
             obs::Json(ckpt_report.checkpoints_written));
    ckpt.set("in_run_checkpoint_seconds",
             obs::Json(ckpt_report.checkpoint_seconds));
    section.set("checkpoint", std::move(ckpt));
    root.set("governance", std::move(section));
    std::printf(
        "governance: governed %.2f%% over ungoverned, %llu degrade steps; "
        "checkpoint %zu bytes, save %.4f s, load %.4f s\n",
        (governed / ungoverned - 1.0) * 100.0,
        static_cast<unsigned long long>(gov_report.degrade_steps),
        payload.size(), save_secs, load_secs);
  }

  // 8. Checkpoint round trip across the zoo (PR 9): for every model that
  // declares caps.checkpoint, save mid-run, load into a fresh estimator,
  // and record snapshot size, save/load time, and whether the resumed run
  // reproduces the uninterrupted curve exactly. Sharded adapters exercise
  // the composite quiesce-then-snapshot path (DESIGN.md §13).
  {
    const auto n_ckpt = static_cast<std::size_t>(scaled(100000));
    ZipfianGenerator gen(10000, 0.9, 26, /*scrambled=*/true);
    const std::vector<Request> trace = materialize(gen, n_ckpt);
    const std::size_t cut = trace.size() / 2;
    auto& registry = EstimatorRegistry::instance();
    obs::Json rows = obs::Json::array();
    for (const EstimatorInfo& info : registry.list()) {
      if (!info.caps.checkpoint) continue;
      const auto make_est = [&] {
        EstimatorOptions options;
        options.set("k", "5");
        options.set("seed", "7");
        if (info.caps.sharded) {
          options.set("shards", "4");
          options.set("threads", "2");
        }
        auto est = registry.create(info.name, options);
        if (!est.is_ok()) {
          std::fprintf(stderr, "%s: %s\n", info.name.c_str(),
                       est.status().message().c_str());
          std::exit(1);
        }
        return std::move(*est);
      };

      // Uninterrupted reference curve.
      auto reference = make_est();
      for (const Request& r : trace) reference->access(r);
      reference->finish();
      const MissRatioCurve ref_curve = reference->mrc({});
      const std::vector<double> sizes =
          evenly_spaced_sizes(ref_curve.max_size(), 40);

      // Mid-run save (idempotent, so it can be repeated for the median).
      auto donor = make_est();
      for (std::size_t i = 0; i < cut; ++i) donor->access(trace[i]);
      std::string payload;
      const double save_secs = median_seconds(repeats, [&] {
        payload.clear();
        const Status s = donor->save_state(&payload);
        if (!s.is_ok()) {
          std::fprintf(stderr, "%s save_state: %s\n", info.name.c_str(),
                       s.message().c_str());
          std::exit(1);
        }
      });

      // Load requires a fresh estimator, so each repeat creates one.
      const double load_secs = median_seconds(repeats, [&] {
        auto fresh = make_est();
        const Status s = fresh->load_state(payload);
        if (!s.is_ok()) {
          std::fprintf(stderr, "%s load_state: %s\n", info.name.c_str(),
                       s.message().c_str());
          std::exit(1);
        }
      });

      // Resume the restored estimator and check the curve is reproduced.
      auto resumed = make_est();
      if (!resumed->load_state(payload).is_ok()) std::exit(1);
      for (std::size_t i = cut; i < trace.size(); ++i)
        resumed->access(trace[i]);
      resumed->finish();
      const MissRatioCurve resumed_curve = resumed->mrc({});
      const double resume_mae = ref_curve.mae(resumed_curve, sizes);

      obs::Json row = obs::Json::object();
      row.set("model", obs::Json(info.name));
      row.set("sharded", obs::Json(info.caps.sharded));
      row.set("payload_bytes",
              obs::Json(static_cast<std::uint64_t>(payload.size())));
      row.set("save_seconds", obs::Json(save_secs));
      row.set("load_seconds", obs::Json(load_secs));
      row.set("resume_mae_vs_uninterrupted", obs::Json(resume_mae));
      row.set("resume_bit_identical", obs::Json(resume_mae == 0.0));
      rows.push_back(std::move(row));
      std::printf(
          "checkpoint %-20s %7zu bytes, save %.5f s, load %.5f s, "
          "resume mae %.6f\n",
          info.name.c_str(), payload.size(), save_secs, load_secs, resume_mae);
    }
    obs::Json section = obs::Json::object();
    section.set("workload", obs::Json("zipf:0.9 footprint=10k"));
    section.set("n", obs::Json(static_cast<std::uint64_t>(trace.size())));
    section.set("cut", obs::Json(static_cast<std::uint64_t>(cut)));
    section.set("rows", std::move(rows));
    root.set("checkpoint_round_trip", std::move(section));
  }

  std::ofstream os(out);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", out.c_str());
    return 1;
  }
  root.dump(os, 0);
  os << '\n';
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
